#include "workloads/matvec_session.h"

#include <cmath>

#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"
#include "hpfrt/matvec.h"
#include "parti/dist_array.h"

namespace mc::workloads {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;
using transport::Comm;
using transport::ProgramSpec;
using transport::World;

namespace {

double matrixEntry(Index i, Index j) {
  return 1.0 / (1.0 + static_cast<double>(i + j));
}
double vectorEntry(Index i, int iter) {
  return static_cast<double>((i + iter) % 13) - 6.0;
}

/// Client-side matvec on the client's Parti arrays (BLOCK rows): allgather
/// the operand, multiply the owned row block.  This is the "compute in the
/// client" alternative of Figure 15.
void clientMatvec(Comm& comm, const parti::BlockDistArray<double>& A,
                  const parti::BlockDistArray<double>& x,
                  parti::BlockDistArray<double>& y, double flopsPerSecond) {
  const Index n = A.globalShape()[1];
  const std::vector<double> full = x.gatherGlobal();
  Index myRows = 0;
  comm.compute([&] {
    const RegularSection rows = A.ownedBox();
    if (rows.empty()) return;
    myRows = rows.count(0);
    for (Index i = rows.lo[0]; i <= rows.hi[0]; ++i) {
      double acc = 0;
      for (Index j = 0; j < n; ++j) {
        acc += A.at(Point::of({i, j})) * full[static_cast<size_t>(j)];
      }
      y.at(Point::of({i})) = acc;
    }
  });
  // Era-calibrated arithmetic cost (see MatvecSessionConfig).
  comm.advance(2.0 * static_cast<double>(myRows * n) / flopsPerSecond);
}

}  // namespace

int breakEvenVectors(const MatvecBreakdown& b, int numVectors) {
  MC_REQUIRE(numVectors > 0);
  const double perVectorServer =
      (b.serverCompute + b.vectorExchange) / numVectors;
  const double fixed = b.scheduleBuild + b.sendMatrix;
  const double gain = b.clientLocalMatvec - perVectorServer;
  if (gain <= 0) return 0;
  // Small epsilon so exact ratios are not pushed up by rounding noise.
  return static_cast<int>(std::ceil(fixed / gain - 1e-9));
}

MatvecBreakdown runMatvecSession(const MatvecSessionConfig& config) {
  MatvecBreakdown result;
  const Index n = config.n;
  const int kClient = 0, kServer = 1;

  transport::WorldOptions options;
  options.net.interNode = transport::atmParams();
  options.net.interProgram = transport::atmParams();
  options.net.contention = config.contention;
  options.net.nodesPerProgram = {config.clientProcs, config.serverNodes};

  auto clientMain = [&](Comm& c) {
    // Client data: matrix BLOCK by rows, vectors BLOCK (Multiblock Parti).
    parti::BlockDistArray<double> A(
        c, layout::BlockDecomp(Shape::of({n, n}), {c.size(), 1}), 0);
    parti::BlockDistArray<double> x(
        c, layout::BlockDecomp(Shape::of({n}), {c.size()}), 0);
    parti::BlockDistArray<double> y(
        c, layout::BlockDecomp(Shape::of({n}), {c.size()}), 0);
    A.fillByPoint([](const Point& p) { return matrixEntry(p[0], p[1]); });

    core::SetOfRegions mSet, vSet;
    mSet.add(core::Region::section(
        RegularSection::box({0, 0}, {n - 1, n - 1})));
    vSet.add(core::Region::section(RegularSection::box({0}, {n - 1})));

    // --- phase 1: schedules --------------------------------------------
    c.barrier();
    const double t0 = c.now();
    // Cached builds (cold the first session, hits on a repeat with the
    // same shapes); the server pairs the same lookups in the same order.
    const auto mSend = core::defaultScheduleCache().getOrBuildSend(
        c, core::PartiAdapter::describe(A), mSet, kServer, config.method);
    const auto xSend = core::defaultScheduleCache().getOrBuildSend(
        c, core::PartiAdapter::describe(x), vSet, kServer, config.method);
    const core::McSchedule yRecv = core::reverseSchedule(*xSend);
    c.barrier();
    const double t1 = c.now();

    // --- phase 2: ship the matrix ----------------------------------------
    core::dataMoveSend<double>(c, *mSend, A.raw());
    // The transfer completes when the server acknowledges unpacking; fold
    // that into the phase by a cross-program ack to rank 0.
    {
      const int tag = c.nextInterTag(kServer);
      if (c.rank() == 0) (void)c.recvValueFrom<int>(kServer, 0, tag);
    }
    c.barrier();
    const double t2 = c.now();

    // --- phase 3: vectors ---------------------------------------------------
    for (int it = 0; it < config.numVectors; ++it) {
      x.fillByPoint([&](const Point& p) { return vectorEntry(p[0], it); });
      core::dataMoveSend<double>(c, *xSend, x.raw());
      core::dataMoveRecv<double>(c, yRecv, y.raw());
    }
    c.barrier();
    const double t3 = c.now();

    // Server-side compute total arrives out of band after the timed region.
    double serverCompute = 0;
    {
      const int tag = c.nextInterTag(kServer);
      if (c.rank() == 0) {
        serverCompute = c.recvValueFrom<double>(kServer, 0, tag);
      }
      std::vector<double> tmp{serverCompute};
      c.bcast(tmp, 0);
      serverCompute = tmp[0];
    }

    // --- client-local alternative (one matvec) -------------------------------
    c.barrier();
    const double t4 = c.now();
    clientMatvec(c, A, x, y, config.flopsPerSecond);
    c.barrier();
    const double t5 = c.now();

    if (c.rank() == 0) {
      result.scheduleBuild = t1 - t0;
      result.sendMatrix = t2 - t1;
      result.serverCompute = serverCompute;
      result.vectorExchange = (t3 - t2) - serverCompute;
      result.clientLocalMatvec = t5 - t4;
    }
  };

  auto serverMain = [&](Comm& c) {
    hpfrt::HpfArray<double> A(c, hpfrt::matvecMatrixDist(n, c.size()));
    hpfrt::HpfArray<double> x(c, hpfrt::matvecVectorDist(n, c.size()));
    hpfrt::HpfArray<double> y(c, hpfrt::matvecVectorDist(n, c.size()));
    core::SetOfRegions mSet, vSet;
    mSet.add(core::Region::section(
        RegularSection::box({0, 0}, {n - 1, n - 1})));
    vSet.add(core::Region::section(RegularSection::box({0}, {n - 1})));

    const auto mRecv = core::defaultScheduleCache().getOrBuildRecv(
        c, core::HpfAdapter::describe(A), mSet, kClient, config.method);
    const auto xRecv = core::defaultScheduleCache().getOrBuildRecv(
        c, core::HpfAdapter::describe(x), vSet, kClient, config.method);
    const core::McSchedule ySend = core::reverseSchedule(*xRecv);

    core::dataMoveRecv<double>(c, *mRecv, A.raw());
    {
      const int tag = c.nextInterTag(kClient);
      c.barrier();
      if (c.rank() == 0) c.sendValueTo(kClient, 0, tag, 1);
    }

    // Persistent engine: the operand-assembly schedule builds once and the
    // per-vector multiplies overlap that exchange with the owned-column
    // partial product, reusing message buffers across vectors.
    hpfrt::MatvecEngine<double> engine(x);
    double computeTotal = 0;
    for (int it = 0; it < config.numVectors; ++it) {
      core::dataMoveRecv<double>(c, *xRecv, x.raw());
      c.barrier();
      const double t0 = c.now();
      engine.multiply(A, x, y);
      // Era-calibrated arithmetic cost (see MatvecSessionConfig).
      c.advance(2.0 *
                static_cast<double>(A.dist().localShape(c.rank())[0] * n) /
                config.flopsPerSecond);
      c.barrier();
      const double t1 = c.now();
      computeTotal += t1 - t0;
      core::dataMoveSend<double>(c, ySend, y.raw());
    }
    {
      const int tag = c.nextInterTag(kClient);
      if (c.rank() == 0) c.sendValueTo(kClient, 0, tag, computeTotal);
    }
  };

  World::run({ProgramSpec{"client", config.clientProcs, clientMain},
              ProgramSpec{"server", config.serverProcs, serverMain}},
             options);
  return result;
}

}  // namespace mc::workloads
