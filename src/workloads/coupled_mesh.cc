#include "workloads/coupled_mesh.h"

#include "core/adapters/chaos_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/schedule_cache.h"
#include "parti/sched_cache.h"

namespace mc::workloads {

using layout::Index;
using layout::Point;
using layout::RegularSection;
using layout::Shape;

CoupledMesh::CoupledMesh(transport::Comm& comm,
                         const CoupledMeshConfig& config)
    : comm_(&comm), config_(config) {
  const Index n = meshPoints();
  // Regular mesh: BLOCK x BLOCK with a one-cell halo for the stencil.
  a_ = std::make_unique<parti::BlockDistArray<double>>(
      comm, Shape::of({config.rows, config.cols}), /*ghost=*/1);
  a_->fillByPoint([&](const Point& p) {
    return 1.0 + 1e-3 * static_cast<double>(p[0] * config_.cols + p[1]);
  });

  // Irregular mesh: the same points under a random renumbering, randomly
  // partitioned (a stand-in for a partitioned CFD mesh).
  const auto perm = meshgen::nodePermutation(n, config.seed);
  const auto mine =
      chaos::randomPartition(n, comm.size(), comm.rank(), config.seed + 1);
  table_ = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(comm, mine, n, config.storage,
                                     config.derefCostSeconds));
  x_ = std::make_unique<chaos::IrregArray<double>>(comm, table_, mine);
  y_ = std::make_unique<chaos::IrregArray<double>>(comm, table_, mine);
  x_->fillByGlobal([](Index) { return 0.0; });
  y_->fillByGlobal([](Index) { return 0.0; });

  // Unstructured connectivity: grid-graph edges under the renumbering,
  // block-distributed by edge id.
  const meshgen::EdgeList edges = meshgen::renumberNodes(
      meshgen::gridEdges(config.rows, config.cols), perm);
  const auto myEdges =
      chaos::blockPartition(edges.numEdges(), comm.size(), comm.rank());
  myIa_.reserve(myEdges.size());
  myIb_.reserve(myEdges.size());
  for (Index e : myEdges) {
    myIa_.push_back(edges.ia[static_cast<size_t>(e)]);
    myIb_.push_back(edges.ib[static_cast<size_t>(e)]);
  }

  // Interface: full remap, regular point k <-> irregular point perm[k].
  mapping_ = meshgen::regToIrregMapping(config.rows, config.cols, perm);
}

void CoupledMesh::buildRegularInspector() {
  comm_->compute([&] {
    ghostSched_ = parti::cachedGhostSchedule(a_->desc(), comm_->rank());
  });
  // The exchanger re-fetches the same cached schedule and binds the
  // persistent split-phase executor the steady-state sweeps run on.
  ghosts_.emplace(*a_);
}

void CoupledMesh::buildIrregularInspector() {
  edgeSweep_.emplace(*comm_, *table_, myIa_, myIb_);
}

void CoupledMesh::buildMetaChaosCopySchedules(core::Method method) {
  // Source set: the whole regular mesh in row-major order (= mapping order).
  core::SetOfRegions regSet;
  regSet.add(core::Region::section(
      RegularSection::box({0, 0}, {config_.rows - 1, config_.cols - 1})));
  // Destination set: the irregular points in mapping order.
  core::SetOfRegions irregSet;
  irregSet.add(core::Region::indices(mapping_.irreg));
  core::DistObject chaosObj = core::ChaosAdapter::describe(*x_);
  if (method == core::Method::kDuplication &&
      table_->storage() == chaos::TranslationTable::Storage::kDistributed) {
    // The duplication method's "exchange data descriptors" step: every
    // processor obtains the full translation table.  This replication is
    // charged to the schedule-build time — it is the cost that makes
    // duplication unattractive for Chaos data.
    auto replicated = std::make_shared<const chaos::TranslationTable>(
        chaos::TranslationTable::replicatedFromEntries(
            table_->gatherFull(*comm_), comm_->size(),
            table_->modeledQueryCost()));
    chaosObj = core::DistObject("chaos", std::move(replicated));
  }
  mcRegToIrreg_ = core::defaultScheduleCache().getOrBuild(
      *comm_, core::PartiAdapter::describe(*a_), regSet, chaosObj, irregSet,
      method);
  mcIrregToReg_ = std::make_shared<const core::McSchedule>(
      core::reverseSchedule(*mcRegToIrreg_));
}

void CoupledMesh::buildChaosCopySchedules() {
  // The Chaos-only route (paper Section 5.1): treat the regular mesh
  // pointwise.  Build a translation table describing the regular mesh's
  // distribution over an *unpadded* shadow buffer, then compute both copy
  // schedules with Chaos dereferences.
  const RegularSection box = a_->ownedBox();
  std::vector<Index> regMine;
  regMine.reserve(static_cast<size_t>(box.numElements()));
  box.forEach([&](const Point& p, Index) {
    regMine.push_back(p[0] * config_.cols + p[1]);
  });
  regTable_ = std::make_shared<const chaos::TranslationTable>(
      chaos::TranslationTable::build(*comm_, regMine, meshPoints(),
                                     config_.storage,
                                     config_.derefCostSeconds));
  regShadow_.assign(regMine.size(), 0.0);
  // Cache the padded offsets for the shadow<->mesh copies once.
  const parti::PartiAddr addr = a_->desc().addrOf(comm_->rank());
  shadowPaddedOffsets_.clear();
  shadowPaddedOffsets_.reserve(regMine.size());
  box.forEach([&](const Point& p, Index) {
    shadowPaddedOffsets_.push_back(addr.offsetOf(p));
  });

  // reg -> irreg: my mapping entries are the regular points I own.
  std::vector<Index> srcOffsets;
  std::vector<Index> dstGlobals;
  srcOffsets.reserve(regMine.size());
  dstGlobals.reserve(regMine.size());
  for (size_t i = 0; i < regMine.size(); ++i) {
    srcOffsets.push_back(static_cast<Index>(i));
    dstGlobals.push_back(
        mapping_.irreg[static_cast<size_t>(regMine[i])]);
  }
  chRegToIrreg_ =
      chaos::cachedIrregCopySchedule(*comm_, *table_, srcOffsets, dstGlobals);
  // irreg -> reg: my mapping entries are the irregular points I own; the
  // destination is the regular mesh via its new translation table.
  std::vector<Index> irrOffsets;
  std::vector<Index> regGlobals;
  const auto myGlobals = x_->myGlobals();
  // Invert the interface: irregular point irreg[k] maps to regular point k.
  std::vector<Index> regOf(static_cast<size_t>(meshPoints()));
  comm_->compute([&] {
    for (Index k = 0; k < meshPoints(); ++k) {
      regOf[static_cast<size_t>(mapping_.irreg[static_cast<size_t>(k)])] = k;
    }
  });
  irrOffsets.reserve(myGlobals.size());
  regGlobals.reserve(myGlobals.size());
  for (size_t i = 0; i < myGlobals.size(); ++i) {
    irrOffsets.push_back(static_cast<Index>(i));
    regGlobals.push_back(regOf[static_cast<size_t>(myGlobals[i])]);
  }
  (void)irrOffsets;
  (void)regGlobals;
  // The copy back reuses the reversed schedule — one dereference pass in
  // total, which is why the paper finds the Chaos build and the Meta-Chaos
  // cooperation build "very similar" in cost.
  chIrregToReg_ =
      std::make_shared<const sched::Schedule>(sched::reverse(*chRegToIrreg_));
}

void CoupledMesh::regularSweep() {
  MC_REQUIRE(ghosts_.has_value(), "buildRegularInspector first");
  parti::stencilSweep(*a_, *ghosts_, scratch_);
}

void CoupledMesh::irregularSweep() {
  MC_REQUIRE(edgeSweep_.has_value(), "buildIrregularInspector first");
  edgeSweep_->run(*x_, *y_);
}

void CoupledMesh::copyRegToIrregMC() {
  MC_REQUIRE(mcRegToIrreg_ != nullptr, "buildMetaChaosCopySchedules first");
  core::dataMove<double>(*comm_, *mcRegToIrreg_, a_->raw(), x_->raw());
}

void CoupledMesh::copyIrregToRegMC() {
  MC_REQUIRE(mcIrregToReg_ != nullptr, "buildMetaChaosCopySchedules first");
  core::dataMove<double>(*comm_, *mcIrregToReg_, x_->raw(), a_->raw());
}

void CoupledMesh::syncShadowFromMesh() {
  comm_->compute([&] {
    const std::span<const double> padded = a_->raw();
    for (size_t i = 0; i < regShadow_.size(); ++i) {
      regShadow_[i] =
          padded[static_cast<size_t>(shadowPaddedOffsets_[i])];
    }
  });
}

void CoupledMesh::syncMeshFromShadow() {
  comm_->compute([&] {
    const std::span<double> padded = a_->raw();
    for (size_t i = 0; i < regShadow_.size(); ++i) {
      padded[static_cast<size_t>(shadowPaddedOffsets_[i])] = regShadow_[i];
    }
  });
}

void CoupledMesh::copyRegToIrregChaos() {
  MC_REQUIRE(chRegToIrreg_ != nullptr, "buildChaosCopySchedules first");
  // The extra copy + extra indirection the paper attributes to the Chaos
  // data-copy path: mesh -> shadow, then the Chaos executor.
  syncShadowFromMesh();
  chaos::executeChaosCopy<double>(*comm_, *chRegToIrreg_, regShadow_,
                                  x_->raw(), comm_->nextUserTag());
}

void CoupledMesh::copyIrregToRegChaos() {
  MC_REQUIRE(chIrregToReg_ != nullptr, "buildChaosCopySchedules first");
  chaos::executeChaosCopy<double>(*comm_, *chIrregToReg_, x_->raw(),
                                  regShadow_, comm_->nextUserTag());
  syncMeshFromShadow();
}

void CoupledMesh::timeStepMC() {
  regularSweep();
  copyRegToIrregMC();
  irregularSweep();
  copyIrregToRegMC();
}

double CoupledMesh::checksum() {
  double local = 0.0;
  comm_->compute([&] {
    const RegularSection box = a_->ownedBox();
    box.forEach([&](const Point& p, Index) { local += a_->at(p); });
    for (double v : x_->raw()) local += v;
    for (double v : y_->raw()) local += v;
  });
  return comm_->allreduceSum(local);
}

}  // namespace mc::workloads
