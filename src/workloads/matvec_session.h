// The client/server matrix-vector workload of the paper's Section 5.4.
//
// A client program (1, 2 or 4 processes, one per node — Fortran with
// Multiblock Parti in the paper) uses an HPF program as a computational
// server: it ships a 512x512 matrix once, then sends operand vectors and
// receives result vectors, all through Meta-Chaos.  Two schedules suffice
// (matrix, vector) because Meta-Chaos schedules are symmetric.
//
// The network mirrors the paper's Alpha-farm/ATM testbed: client and server
// run on disjoint nodes, inter-program messages pay ATM-class costs, and
// per-node link contention is modeled (the reason schedule/copy times rise
// again beyond one server process per node).
//
// runMatvecSession returns the client-observed breakdown the paper plots in
// Figures 10-14: schedule computation, matrix send, server compute, and
// vector send/recv time.
#pragma once

#include "core/schedule_builder.h"
#include "transport/world.h"

namespace mc::workloads {

struct MatvecSessionConfig {
  layout::Index n = 512;      ///< matrix dimension
  int clientProcs = 1;        ///< 1, 2 or 4 (one per client node)
  int serverProcs = 8;        ///< up to 16
  int serverNodes = 4;        ///< processes placed cyclically on these nodes
  int numVectors = 1;         ///< matvecs per session (schedules reused)
  core::Method method = core::Method::kCooperation;
  bool contention = true;     ///< model per-node link contention
  /// Modeled matvec arithmetic rate.  The virtual clock charges
  /// 2*rows*n / flopsPerSecond per processor for each multiply, so the
  /// compute/communication balance matches the paper's testbed (mid-90s
  /// HPF-compiled dgemv against an OC-3 ATM network) rather than this
  /// host's.  See DESIGN.md §3.
  double flopsPerSecond = 4e6;
};

struct MatvecBreakdown {
  double scheduleBuild = 0;   ///< both schedules, client-observed (s)
  double sendMatrix = 0;      ///< one-time matrix transfer (s)
  double serverCompute = 0;   ///< sum over vectors, server-measured (s)
  double vectorExchange = 0;  ///< sum over vectors: roundtrip - server (s)
  double clientLocalMatvec = 0;  ///< one matvec done client-side (s)

  double total() const {
    return scheduleBuild + sendMatrix + serverCompute + vectorExchange;
  }
};

/// Break-even vector count from per-session measurements (Figure 15).
/// `numVectors` must match the breakdown's session.  Returns 0 when the
/// server never wins.
int breakEvenVectors(const MatvecBreakdown& b, int numVectors);

/// Runs the full two-program session and returns the client's breakdown.
MatvecBreakdown runMatvecSession(const MatvecSessionConfig& config);

}  // namespace mc::workloads
