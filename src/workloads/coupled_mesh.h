// The paper's Figure-1 workload: a structured mesh (Multiblock Parti)
// coupled to an unstructured mesh (Chaos) through an interface mapping.
//
// Section 5.1 instantiates it with a 256x256 regular mesh and a 65536-point
// irregular mesh — equal counts, i.e. the interface remaps the *whole* mesh
// between its regular (i,j) numbering and an irregular point numbering.
// This header packages that workload for the single-program experiments
// (Tables 1 and 2) and the examples; the two-program variant (Tables 3/4)
// reuses the same pieces on each side.
//
// Phases (Figure 1):
//   Loop 1: 4-point stencil sweep over the regular mesh      (Parti)
//   Loop 2: copy regular mesh -> irregular mesh              (Meta-Chaos)
//   Loop 3: edge sweep over the unstructured mesh            (Chaos)
//   Loop 4: copy irregular mesh -> regular mesh              (Meta-Chaos)
#pragma once

#include <memory>
#include <optional>

#include "chaos/irreg_copy.h"
#include "chaos/irregular_loop.h"
#include "chaos/partition.h"
#include "core/data_move.h"
#include "meshgen/meshgen.h"
#include "parti/section_copy.h"
#include "parti/stencil.h"

namespace mc::workloads {

struct CoupledMeshConfig {
  layout::Index rows = 256;
  layout::Index cols = 256;
  std::uint64_t seed = 12345;
  chaos::TranslationTable::Storage storage =
      chaos::TranslationTable::Storage::kDistributed;
  /// Era-calibrated per-element Chaos dereference cost charged to the
  /// virtual clock (~30us/element reproduces the per-element schedule cost
  /// the paper's Table 2 implies for the SP2).  Zero disables the model.
  double derefCostSeconds = 30e-6;
};

/// Single-program coupled meshes with all inspectors and executors.
class CoupledMesh {
 public:
  /// Collective constructor: builds the meshes, fills initial values, and
  /// generates the interface mapping and edge list (deterministic in seed).
  CoupledMesh(transport::Comm& comm, const CoupledMeshConfig& config);

  layout::Index meshPoints() const { return config_.rows * config_.cols; }
  transport::Comm& comm() const { return *comm_; }
  parti::BlockDistArray<double>& regular() { return *a_; }
  chaos::IrregArray<double>& irregularX() { return *x_; }
  chaos::IrregArray<double>& irregularY() { return *y_; }

  // --- inspectors -----------------------------------------------------------
  /// Parti inspector: ghost-fill schedule for the stencil sweep.
  void buildRegularInspector();
  /// Chaos inspector: localize the edge endpoint references.
  void buildIrregularInspector();
  /// Meta-Chaos schedules for Loops 2 and 4 (forward + reverse).
  void buildMetaChaosCopySchedules(core::Method method);
  /// Chaos-native baseline for the same copies: builds a translation table
  /// describing the regular mesh pointwise plus the copy schedules
  /// (the Table 2 baseline).
  void buildChaosCopySchedules();

  // --- executors (per time-step pieces) --------------------------------------
  /// Loop 1: stencil sweep over the regular mesh.
  void regularSweep();
  /// Loop 3: edge sweep over the unstructured mesh.
  void irregularSweep();
  /// Loops 2 and 4 using the Meta-Chaos schedules.
  void copyRegToIrregMC();
  void copyIrregToRegMC();
  /// Loops 2 and 4 using the Chaos-native schedules.
  void copyRegToIrregChaos();
  void copyIrregToRegChaos();

  /// One full Figure-1 time-step using Meta-Chaos copies.
  void timeStepMC();

  /// Global checksum of both meshes (collective); pins down correctness of
  /// benchmark configurations across methods.
  double checksum();

 private:
  transport::Comm* comm_;
  CoupledMeshConfig config_;
  std::shared_ptr<const chaos::TranslationTable> table_;
  std::unique_ptr<parti::BlockDistArray<double>> a_;
  std::unique_ptr<chaos::IrregArray<double>> x_;
  std::unique_ptr<chaos::IrregArray<double>> y_;
  std::vector<layout::Index> myIa_, myIb_;  // my slice of the edge arrays
  meshgen::InterfaceMapping mapping_;       // full remap (replicated)

  // Inspector products.  Schedules are shared_ptrs into the per-rank
  // schedule caches: rebuilding an inspector with unchanged inputs is a
  // cache hit that hands back the same (run-compressed) schedule.
  std::shared_ptr<const parti::Schedule> ghostSched_;
  // Persistent split-phase ghost executor: steady-state sweeps overlap the
  // halo traffic with the interior update and recycle message buffers.
  std::optional<parti::GhostExchanger<double>> ghosts_;
  std::optional<chaos::EdgeSweep<double>> edgeSweep_;
  std::shared_ptr<const core::McSchedule> mcRegToIrreg_;
  std::shared_ptr<const core::McSchedule> mcIrregToReg_;
  // Chaos-native baseline state: shadow unpadded copy of the regular mesh
  // plus its pointwise translation table (the extra memory the paper says
  // Meta-Chaos avoids).
  std::shared_ptr<const chaos::TranslationTable> regTable_;
  std::vector<double> regShadow_;
  std::vector<layout::Index> shadowPaddedOffsets_;  // shadow[i] <-> padded[off]
  std::shared_ptr<const sched::Schedule> chRegToIrreg_;
  std::shared_ptr<const sched::Schedule> chIrregToReg_;
  std::vector<double> scratch_;

  void syncShadowFromMesh();
  void syncMeshFromShadow();
};

}  // namespace mc::workloads
