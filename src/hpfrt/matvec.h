// Distributed matrix–vector multiply: the HPF computational server of the
// paper's Section 5.4.
//
// The matrix is distributed (BLOCK, *) — rows blocked over all processors,
// columns on-processor — and the operand/result vectors are BLOCK
// distributed.  One multiply is:
//   1. assemble the full operand vector (internal communication that grows
//      with the processor count — the reason the paper's HPF server stops
//      speeding up beyond 8 processes),
//   2. local dense dgemv over the owned row block,
//   3. the result vector is naturally BLOCK distributed by rows.
//
// The assembly is a split-phase overlap pipeline (MatvecEngine): each
// processor *starts* a direct peer exchange of operand blocks, computes the
// partial product over its locally owned columns while the blocks are in
// flight (polling between row chunks), then finishes the exchange and
// accumulates the remote columns in ascending column order — deterministic
// regardless of message arrival.  Sums reassociate (owned columns first),
// so results may differ from a straight c=0..n-1 loop by floating-point
// rounding only.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "hpfrt/hpf_array.h"
#include "obs/span.h"
#include "sched/executor.h"
#include "sched/serialize.h"

namespace mc::hpfrt {

/// The canonical server-side distributions for an n x n matvec on `nprocs`.
inline HpfDist matvecMatrixDist(layout::Index n, int nprocs) {
  return HpfDist(layout::Shape::of({n, n}),
                 {DimDist{DistKind::kBlock, nprocs, 1},
                  DimDist{DistKind::kBlock, 1, 1}});
}
inline HpfDist matvecVectorDist(layout::Index n, int nprocs) {
  return HpfDist(layout::Shape::of({n}),
                 {DimDist{DistKind::kBlock, nprocs, 1}});
}

/// Persistent split-phase matvec executor for the server's steady-state
/// loop (many multiplies against one operand distribution).  The inspector
/// side — the operand-assembly schedule (one block exchange per peer pair)
/// and the owned/remote column classification — runs once at construction;
/// every multiply() then overlaps the exchange with the owned-column
/// partial product and reuses its message buffers (zero steady-state
/// payload copies or allocations; see sched::Executor).
template <typename T>
class MatvecEngine {
 public:
  /// Collective.  `x` fixes the operand distribution; later multiplies
  /// must pass an operand with this same distribution.
  explicit MatvecEngine(const HpfArray<T>& x)
      : comm_(&x.comm()), n_(x.globalShape()[0]) {
    MC_REQUIRE(x.globalShape().rank == 1, "matvec operand must be 1-D");
    transport::Comm& comm = *comm_;
    comm.compute([&] {
      const int np = comm.size();
      const int me = comm.rank();
      // (local offset, global index) of every processor's owned elements,
      // in ascending local-offset order — the pack/unpack order both sides
      // derive from the replicated distribution.
      std::vector<std::vector<std::pair<layout::Index, layout::Index>>>
          owned(static_cast<size_t>(np));
      for (int p = 0; p < np; ++p) {
        x.dist().forEachOwned(
            p, [&](const layout::Point& pt, layout::Index off) {
              owned[static_cast<size_t>(p)].emplace_back(off, pt[0]);
            });
        std::sort(owned[static_cast<size_t>(p)].begin(),
                  owned[static_cast<size_t>(p)].end());
      }
      const auto& mine = owned[static_cast<size_t>(me)];
      for (int p = 0; p < np; ++p) {
        if (p == me || owned[static_cast<size_t>(p)].empty()) continue;
        sched::OffsetPlan plan;
        plan.peer = p;
        plan.offsets.reserve(owned[static_cast<size_t>(p)].size());
        for (const auto& [off, g] : owned[static_cast<size_t>(p)]) {
          plan.offsets.push_back(g);  // unpack straight into `full`
        }
        sched_.recvs.push_back(std::move(plan));
      }
      if (!mine.empty()) {
        std::vector<layout::Index> mySrc;
        mySrc.reserve(mine.size());
        for (const auto& [off, g] : mine) mySrc.push_back(off);
        for (int p = 0; p < np; ++p) {
          if (p == me) continue;
          sched_.sends.push_back(sched::OffsetPlan{p, mySrc, {}});
        }
      }
      sched_.bufferLocalCopies = false;
      sched_.compress();
      // Owned columns (ascending global) for the overlapped partial
      // product, and the complementary remote column ranges for the finish
      // pass.
      ownCols_.reserve(mine.size());
      for (const auto& [off, g] : mine) ownCols_.emplace_back(g, off);
      std::sort(ownCols_.begin(), ownCols_.end());
      layout::Index at = 0;
      for (const auto& [g, off] : ownCols_) {
        if (at < g) remoteRanges_.emplace_back(at, g);
        at = g + 1;
      }
      if (at < n_) remoteRanges_.emplace_back(at, n_);
      localLen_ = x.dist().localShape(me).numElements();
    });
  }

  /// y = A * x (collective); see matvec() below for the shape contract.
  void multiply(const HpfArray<T>& A, const HpfArray<T>& x, HpfArray<T>& y) {
    transport::Comm& comm = *comm_;
    MC_REQUIRE(A.globalShape().rank == 2 && x.globalShape().rank == 1 &&
               y.globalShape().rank == 1);
    MC_REQUIRE(A.globalShape()[1] == n_ && x.globalShape()[0] == n_ &&
               y.globalShape()[0] == A.globalShape()[0]);
    MC_REQUIRE(A.dist().dims()[1].procs == 1,
               "matvec requires a (BLOCK, *) matrix distribution");
    const layout::Shape localA = A.dist().localShape(comm.rank());
    const layout::Index myRows = localA[0];
    const std::span<const T> a = A.raw();
    const std::span<const T> xo = x.raw();
    const std::span<T> out = y.raw();
    MC_REQUIRE(static_cast<layout::Index>(out.size()) == myRows,
               "y's distribution does not match A's row distribution");
    if (!exec_) exec_.emplace(comm, sched_);
    full_.resize(static_cast<size_t>(n_));

    // Phase 1: start the operand exchange, then the partial product over
    // the owned columns (their x values are already on hand), polling the
    // exchange between row chunks so arrived blocks are consumed under the
    // compute.
    auto pending = exec_->start(x.raw());
    // Owned-column partial product riding under the in-flight exchange.
    obs::ScopedSpan ownedSpan(obs::phase::kCompute);
    constexpr layout::Index kRowChunk = 32;
    for (layout::Index r0 = 0; r0 < myRows; r0 += kRowChunk) {
      const layout::Index r1 = std::min(myRows, r0 + kRowChunk);
      comm.compute([&] {
        for (layout::Index r = r0; r < r1; ++r) {
          T acc{};
          const size_t rowBase = static_cast<size_t>(r * n_);
          for (const auto& [g, off] : ownCols_) {
            acc += a[rowBase + static_cast<size_t>(g)] *
                   xo[static_cast<size_t>(off)];
          }
          out[static_cast<size_t>(r)] = acc;
        }
      });
      pending.poll();
    }
    ownedSpan.end();
    pending.finish(full_);

    // Phase 2: the remote columns, in ascending column order —
    // deterministic regardless of arrival order.
    obs::ScopedSpan remoteSpan(obs::phase::kCompute);
    comm.compute([&] {
      for (layout::Index r = 0; r < myRows; ++r) {
        T acc = out[static_cast<size_t>(r)];
        const size_t rowBase = static_cast<size_t>(r * n_);
        for (const auto& [lo, hi] : remoteRanges_) {
          for (layout::Index c = lo; c < hi; ++c) {
            acc += a[rowBase + static_cast<size_t>(c)] *
                   full_[static_cast<size_t>(c)];
          }
        }
        out[static_cast<size_t>(r)] = acc;
      }
    });
  }

  /// Batched multiply: y_j = A * x_j for k operand vectors, `xs` holding
  /// vector j's local operand block at [j*localLen, (j+1)*localLen) and
  /// `ys` receiving vector j's owned rows at [j*myRows, (j+1)*myRows).
  /// The operand assembly is ONE fused exchange (sched::batchReplicate):
  /// each peer pair still exchanges a single message, now carrying all k
  /// blocks — a batch of compatible requests costs one exchange's latency.
  /// Per (row, vector) the accumulation order is exactly multiply()'s
  /// (owned columns in pack order, then remote ranges ascending), so every
  /// y_j is bitwise identical to a multiply() on x_j alone, for any k and
  /// any batch composition.  `pollHook`, when given, runs between row
  /// chunks — the compute server polls the *next* staged batch's receives
  /// there, so batch k+1's operand blocks drain under batch k's compute.
  void multiplyBatch(const HpfArray<T>& A, std::span<const T> xs,
                     std::span<T> ys, int k,
                     const std::function<void()>& pollHook = {}) {
    transport::Comm& comm = *comm_;
    MC_REQUIRE(k >= 1);
    MC_REQUIRE(A.globalShape().rank == 2 && A.globalShape()[1] == n_);
    MC_REQUIRE(A.dist().dims()[1].procs == 1,
               "matvec requires a (BLOCK, *) matrix distribution");
    const layout::Index myRows = A.dist().localShape(comm.rank())[0];
    MC_REQUIRE(static_cast<layout::Index>(xs.size()) == k * localLen_,
               "xs must hold k local operand blocks");
    MC_REQUIRE(static_cast<layout::Index>(ys.size()) == k * myRows,
               "ys must hold k owned-row blocks");
    const std::span<const T> a = A.raw();
    BatchExec& be = batchExec(k);
    fullBatch_.resize(static_cast<size_t>(k) * static_cast<size_t>(n_));

    auto pending = be.exec->start(xs);
    obs::ScopedSpan ownedSpan(obs::phase::kCompute);
    constexpr layout::Index kRowChunk = 32;
    for (layout::Index r0 = 0; r0 < myRows; r0 += kRowChunk) {
      const layout::Index r1 = std::min(myRows, r0 + kRowChunk);
      comm.compute([&] {
        for (layout::Index r = r0; r < r1; ++r) {
          const size_t rowBase = static_cast<size_t>(r * n_);
          for (int j = 0; j < k; ++j) {
            const T* xo = xs.data() + static_cast<size_t>(j) *
                                          static_cast<size_t>(localLen_);
            T acc{};
            for (const auto& [g, off] : ownCols_) {
              acc += a[rowBase + static_cast<size_t>(g)] *
                     xo[static_cast<size_t>(off)];
            }
            ys[static_cast<size_t>(j) * static_cast<size_t>(myRows) +
               static_cast<size_t>(r)] = acc;
          }
        }
      });
      pending.poll();
      if (pollHook) pollHook();
    }
    ownedSpan.end();
    pending.finish(fullBatch_);

    obs::ScopedSpan remoteSpan(obs::phase::kCompute);
    comm.compute([&] {
      for (layout::Index r = 0; r < myRows; ++r) {
        const size_t rowBase = static_cast<size_t>(r * n_);
        for (int j = 0; j < k; ++j) {
          const T* full = fullBatch_.data() +
                          static_cast<size_t>(j) * static_cast<size_t>(n_);
          T acc = ys[static_cast<size_t>(j) * static_cast<size_t>(myRows) +
                     static_cast<size_t>(r)];
          for (const auto& [lo, hi] : remoteRanges_) {
            for (layout::Index c = lo; c < hi; ++c) {
              acc += a[rowBase + static_cast<size_t>(c)] *
                     full[static_cast<size_t>(c)];
            }
          }
          ys[static_cast<size_t>(j) * static_cast<size_t>(myRows) +
             static_cast<size_t>(r)] = acc;
        }
      }
    });
  }

  layout::Index operandLocalLen() const { return localLen_; }

 private:
  /// Per-batch-size fused schedule + executor, built once per k and kept
  /// (unique_ptr: executors hold pointers into their schedule, so entries
  /// must never relocate).
  struct BatchExec {
    sched::Schedule sched;
    std::optional<sched::Executor<T>> exec;
  };
  BatchExec& batchExec(int k) {
    std::unique_ptr<BatchExec>& be = batchExecs_[k];
    if (!be) {
      comm_->compute([&] {
        be = std::make_unique<BatchExec>();
        be->sched = sched::batchReplicate(sched_, k, localLen_, n_);
      });
      be->exec.emplace(*comm_, be->sched);
    }
    return *be;
  }

  transport::Comm* comm_;
  layout::Index n_;
  sched::Schedule sched_;  // operand-block exchange (no local transfers)
  std::vector<std::pair<layout::Index, layout::Index>> ownCols_;  // (global, off)
  std::vector<std::pair<layout::Index, layout::Index>> remoteRanges_;  // [lo,hi)
  // Bound lazily on the first multiply; do not move an engine after that
  // (the executor points into sched_).
  std::optional<sched::Executor<T>> exec_;
  std::vector<T> full_;  // assembled operand (owned range unused)
  layout::Index localLen_ = 0;  // operand elements owned by this rank
  std::map<int, std::unique_ptr<BatchExec>> batchExecs_;  // by batch size
  std::vector<T> fullBatch_;  // k assembled operands, back to back
};

/// y = A * x (collective).  A must be (BLOCK, *) and x, y BLOCK with the
/// same processor count; y's distribution must match A's row distribution.
/// One-shot form over MatvecEngine — server loops should hold an engine.
template <typename T>
void matvec(const HpfArray<T>& A, const HpfArray<T>& x, HpfArray<T>& y) {
  MatvecEngine<T> engine(x);
  engine.multiply(A, x, y);
}

}  // namespace mc::hpfrt
