// Distributed matrix–vector multiply: the HPF computational server of the
// paper's Section 5.4.
//
// The matrix is distributed (BLOCK, *) — rows blocked over all processors,
// columns on-processor — and the operand/result vectors are BLOCK
// distributed.  One multiply is:
//   1. allgather the operand vector (internal communication that grows with
//      the processor count — the reason the paper's HPF server stops
//      speeding up beyond 8 processes),
//   2. local dense dgemv over the owned row block,
//   3. the result vector is naturally BLOCK distributed by rows.
#pragma once

#include "hpfrt/hpf_array.h"

namespace mc::hpfrt {

/// The canonical server-side distributions for an n x n matvec on `nprocs`.
inline HpfDist matvecMatrixDist(layout::Index n, int nprocs) {
  return HpfDist(layout::Shape::of({n, n}),
                 {DimDist{DistKind::kBlock, nprocs, 1},
                  DimDist{DistKind::kBlock, 1, 1}});
}
inline HpfDist matvecVectorDist(layout::Index n, int nprocs) {
  return HpfDist(layout::Shape::of({n}),
                 {DimDist{DistKind::kBlock, nprocs, 1}});
}

/// y = A * x (collective).  A must be (BLOCK, *) and x, y BLOCK with the
/// same processor count; y's distribution must match A's row distribution.
template <typename T>
void matvec(const HpfArray<T>& A, const HpfArray<T>& x, HpfArray<T>& y) {
  transport::Comm& comm = A.comm();
  MC_REQUIRE(A.globalShape().rank == 2 && x.globalShape().rank == 1 &&
             y.globalShape().rank == 1);
  const layout::Index n = A.globalShape()[1];
  MC_REQUIRE(x.globalShape()[0] == n &&
             y.globalShape()[0] == A.globalShape()[0]);
  MC_REQUIRE(A.dist().dims()[1].procs == 1,
             "matvec requires a (BLOCK, *) matrix distribution");

  // Step 1: assemble the full operand vector (allgather).
  auto rows = comm.allgather<T>(x.raw());
  std::vector<T> full(static_cast<size_t>(n));
  for (int proc = 0; proc < comm.size(); ++proc) {
    x.dist().forEachOwned(proc, [&](const layout::Point& p, layout::Index off) {
      full[static_cast<size_t>(p[0])] =
          rows[static_cast<size_t>(proc)][static_cast<size_t>(off)];
    });
  }

  // Step 2: local dgemv over the owned row block.
  comm.compute([&] {
    const layout::Shape localA = A.dist().localShape(comm.rank());
    const layout::Index myRows = localA[0];
    const std::span<const T> a = A.raw();
    const std::span<T> out = y.raw();
    MC_REQUIRE(static_cast<layout::Index>(out.size()) == myRows,
               "y's distribution does not match A's row distribution");
    for (layout::Index r = 0; r < myRows; ++r) {
      T acc{};
      const size_t rowBase = static_cast<size_t>(r * n);
      for (layout::Index c = 0; c < n; ++c) {
        acc += a[rowBase + static_cast<size_t>(c)] * full[static_cast<size_t>(c)];
      }
      out[static_cast<size_t>(r)] = acc;
    }
  });
}

}  // namespace mc::hpfrt
