// HPF-style data distributions.
//
// The High Performance Fortran runtime distributes each array dimension
// independently over a processor grid with one of the standard HPF
// patterns: BLOCK, CYCLIC, or CYCLIC(k) (block-cyclic).  A dimension mapped
// to a grid extent of 1 behaves like HPF's "*" (not distributed).
//
// Ownership and local addressing are closed-form in all three patterns —
// the inquiry functions Meta-Chaos needs are O(1) per element, with no
// translation table (contrast with Chaos).  Local storage is row-major over
// the per-dimension local index spaces, the standard HPF layout.
#pragma once

#include <vector>

#include "layout/index.h"
#include "layout/section.h"

namespace mc::hpfrt {

enum class DistKind {
  kBlock,        ///< BLOCK: contiguous chunks of ceil(N/P)
  kCyclic,       ///< CYCLIC: round-robin single elements
  kBlockCyclic,  ///< CYCLIC(k): round-robin blocks of k
};

/// Distribution of one dimension.
struct DimDist {
  DistKind kind = DistKind::kBlock;
  int procs = 1;               ///< grid extent along this dimension
  layout::Index param = 1;     ///< block size for kBlockCyclic
};

class HpfDist {
 public:
  HpfDist(layout::Shape global, std::vector<DimDist> dims);

  /// BLOCK in every dimension over a near-square grid (the common default).
  static HpfDist blockEveryDim(layout::Shape global, int nprocs);

  const layout::Shape& globalShape() const { return global_; }
  int rank() const { return global_.rank; }
  int nprocs() const { return nprocs_; }
  const std::vector<DimDist>& dims() const { return dims_; }

  std::vector<int> procCoord(int proc) const;
  int procAt(const std::vector<int>& coord) const;

  int ownerInDim(int d, layout::Index g) const;
  layout::Index localIndexInDim(int d, layout::Index g) const;
  layout::Index localCountInDim(int d, int gridCoord) const;
  layout::Index globalFromLocal(int d, int gridCoord, layout::Index li) const;

  int ownerOf(const layout::Point& p) const;
  layout::Shape localShape(int proc) const;
  /// Row-major offset of owned point `p` in `proc`'s local storage.
  layout::Index localOffset(int proc, const layout::Point& p) const;

  /// Calls fn(globalPoint, localOffset) for every element `proc` owns, in
  /// local storage order.
  template <typename F>
  void forEachOwned(int proc, F&& fn) const {
    const layout::Shape local = localShape(proc);
    const std::vector<int> coord = procCoord(proc);
    if (local.numElements() == 0) return;
    layout::Point li;
    li.rank = local.rank;
    for (int d = 0; d < local.rank; ++d) li[d] = 0;
    layout::Index off = 0;
    for (;;) {
      layout::Point g;
      g.rank = local.rank;
      for (int d = 0; d < local.rank; ++d) {
        g[d] = globalFromLocal(d, coord[static_cast<size_t>(d)], li[d]);
      }
      fn(g, off);
      ++off;
      int d = local.rank - 1;
      for (; d >= 0; --d) {
        if (++li[d] < local[d]) break;
        li[d] = 0;
      }
      if (d < 0) return;
    }
  }

 private:
  layout::Shape global_;
  std::vector<DimDist> dims_;
  int nprocs_ = 1;
};

}  // namespace mc::hpfrt
