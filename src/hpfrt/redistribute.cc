#include "hpfrt/redistribute.h"

#include "layout/section_hash.h"
#include "obs/metrics.h"

namespace mc::hpfrt {

sched::KeyedCache<sched::Schedule>& hpfScheduleCache() {
  thread_local sched::KeyedCache<sched::Schedule> cache;
  thread_local bool registered = [] {
    obs::registerCacheMetrics(obs::threadRegistry(), "hpf.sched_cache",
                              cache);
    return true;
  }();
  (void)registered;
  return cache;
}

namespace {

void hashHpfDist(HashStream& h, const HpfDist& dist) {
  layout::hashShape(h, dist.globalShape());
  for (const DimDist& dd : dist.dims()) {
    h.pod(static_cast<int>(dd.kind));
    h.pod(dd.procs);
    h.pod(dd.param);
  }
}

}  // namespace

std::shared_ptr<const sched::Schedule> cachedRedistSchedule(
    const HpfDist& srcDist, const layout::RegularSection& srcSec,
    const HpfDist& dstDist, const layout::RegularSection& dstSec,
    int myProc) {
  HashStream h;
  h.str("hpf-redist");
  hashHpfDist(h, srcDist);
  layout::hashSection(h, srcSec);
  hashHpfDist(h, dstDist);
  layout::hashSection(h, dstSec);
  h.pod(myProc);
  return hpfScheduleCache().getOrBuild(h.digest(), [&] {
    auto built = std::make_shared<sched::Schedule>(
        buildRedistSchedule(srcDist, srcSec, dstDist, dstSec, myProc));
    built->compress();
    return built;
  });
}

sched::Schedule buildRedistSchedule(const HpfDist& srcDist,
                                    const layout::RegularSection& srcSec,
                                    const HpfDist& dstDist,
                                    const layout::RegularSection& dstSec,
                                    int myProc) {
  MC_REQUIRE(srcSec.numElements() == dstSec.numElements(),
             "sections must have equal element counts (%lld vs %lld)",
             static_cast<long long>(srcSec.numElements()),
             static_cast<long long>(dstSec.numElements()));
  sched::Schedule out;
  std::vector<sched::OffsetPlan> sendBy(static_cast<size_t>(dstDist.nprocs()));
  std::vector<sched::OffsetPlan> recvBy(static_cast<size_t>(srcDist.nprocs()));
  const layout::Index n = srcSec.numElements();
  for (layout::Index k = 0; k < n; ++k) {
    const layout::Point sp = srcSec.pointAt(k);
    const layout::Point dp = dstSec.pointAt(k);
    const int sOwner = srcDist.ownerOf(sp);
    const int dOwner = dstDist.ownerOf(dp);
    if (sOwner == myProc && dOwner == myProc) {
      out.localPairs.emplace_back(srcDist.localOffset(myProc, sp),
                                  dstDist.localOffset(myProc, dp));
    } else if (sOwner == myProc) {
      sendBy[static_cast<size_t>(dOwner)].offsets.push_back(
          srcDist.localOffset(myProc, sp));
    } else if (dOwner == myProc) {
      recvBy[static_cast<size_t>(sOwner)].offsets.push_back(
          dstDist.localOffset(myProc, dp));
    }
  }
  for (int q = 0; q < dstDist.nprocs(); ++q) {
    auto& plan = sendBy[static_cast<size_t>(q)];
    if (plan.offsets.empty()) continue;
    plan.peer = q;
    out.sends.push_back(std::move(plan));
  }
  for (int q = 0; q < srcDist.nprocs(); ++q) {
    auto& plan = recvBy[static_cast<size_t>(q)];
    if (plan.offsets.empty()) continue;
    plan.peer = q;
    out.recvs.push_back(std::move(plan));
  }
  out.sortByPeer();
  return out;
}

}  // namespace mc::hpfrt
