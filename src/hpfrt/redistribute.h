// Intra-HPF redistribution: copy (a section of) one HPF array into (a
// section of) another with a different distribution.
//
// The schedule builder is closed-form: both sides' ownership is computable
// locally from the two HpfDist descriptors, so the build needs no
// communication — the HPF analogue of the "duplication" path.  Sections are
// paired element-by-element in row-major linearization order, HPF
// array-assignment semantics (A[s1] = B[s2] with conformant sections).
#pragma once

#include "hpfrt/hpf_array.h"
#include "sched/executor.h"
#include "sched/schedule_cache.h"

namespace mc::hpfrt {

/// Builds the redistribution schedule on `myProc`.  `srcSec` and `dstSec`
/// must contain the same number of elements (they are paired in row-major
/// linearization order, which for conformant sections is dimension-wise).
sched::Schedule buildRedistSchedule(const HpfDist& srcDist,
                                    const layout::RegularSection& srcSec,
                                    const HpfDist& dstDist,
                                    const layout::RegularSection& dstSec,
                                    int myProc);

/// Cached buildRedistSchedule: keyed on both distributions and sections,
/// per virtual processor.  The build is communication-free, so every rank
/// hits or misses in lockstep and no agreement round is needed.  Cached
/// schedules come back run-compressed.
std::shared_ptr<const sched::Schedule> cachedRedistSchedule(
    const HpfDist& srcDist, const layout::RegularSection& srcSec,
    const HpfDist& dstDist, const layout::RegularSection& dstSec, int myProc);

/// The calling rank's cache behind cachedRedistSchedule (exposed so tests
/// and benches can read its hit/miss/eviction counters).
sched::KeyedCache<sched::Schedule>& hpfScheduleCache();

/// Executes the redistribution (collective).
template <typename T>
void redistribute(const sched::Schedule& sched, const HpfArray<T>& src,
                  HpfArray<T>& dst) {
  transport::Comm& comm = src.comm();
  const int tag = comm.nextUserTag();
  sched::execute<T>(comm, sched, src.raw(), dst.raw(), tag);
}

/// HPF array-section assignment, dst[dstSec] = src[srcSec], in one call —
/// the runtime operation behind `A(1:50, 10:60) = B(50:99, 50:100)`.
/// The schedule comes from the rank's cache, so repeating the same
/// assignment (e.g. once per time step) pays the build exactly once.
template <typename T>
void sectionAssign(const HpfArray<T>& src, const layout::RegularSection& srcSec,
                   HpfArray<T>& dst, const layout::RegularSection& dstSec) {
  const auto sched = cachedRedistSchedule(src.dist(), srcSec, dst.dist(),
                                          dstSec, src.comm().rank());
  redistribute(*sched, src, dst);
}

/// A persistent section-assignment executor: binds once to the cached
/// redistribution schedule for (src, srcSec) -> (dst, dstSec) and reuses
/// its message buffers across assign() calls — the form a time-step loop
/// repeating the same assignment should hold.
template <typename T>
class SectionAssigner {
 public:
  SectionAssigner(const HpfArray<T>& src, const layout::RegularSection& srcSec,
                  HpfArray<T>& dst, const layout::RegularSection& dstSec)
      : src_(&src),
        dst_(&dst),
        exec_(src.comm(), cachedRedistSchedule(src.dist(), srcSec, dst.dist(),
                                               dstSec, src.comm().rank())) {}

  /// One collective assignment, dst[dstSec] = src[srcSec].
  void assign() { exec_.run(src_->raw(), dst_->raw()); }

 private:
  const HpfArray<T>* src_;
  HpfArray<T>* dst_;
  sched::Executor<T> exec_;
};

}  // namespace mc::hpfrt
