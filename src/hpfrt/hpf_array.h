// HpfArray: a distributed array managed by the HPF runtime.
#pragma once

#include <span>
#include <vector>

#include "hpfrt/dist.h"
#include "transport/comm.h"

namespace mc::hpfrt {

template <typename T>
class HpfArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective constructor; all processors pass an identical distribution.
  HpfArray(transport::Comm& comm, HpfDist dist)
      : comm_(&comm), dist_(std::move(dist)) {
    MC_REQUIRE(dist_.nprocs() == comm.size(),
               "distribution is over %d processors but the program has %d",
               dist_.nprocs(), comm.size());
    data_.assign(
        static_cast<size_t>(dist_.localShape(comm.rank()).numElements()), T{});
  }

  transport::Comm& comm() const { return *comm_; }
  const HpfDist& dist() const { return dist_; }
  const layout::Shape& globalShape() const { return dist_.globalShape(); }

  std::span<T> raw() { return data_; }
  std::span<const T> raw() const { return data_; }

  /// Access by global point; the point must be owned by this processor.
  T& at(const layout::Point& p) {
    return data_[static_cast<size_t>(dist_.localOffset(comm_->rank(), p))];
  }
  const T& at(const layout::Point& p) const {
    return data_[static_cast<size_t>(dist_.localOffset(comm_->rank(), p))];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Sets every owned element to fn(globalPoint).
  template <typename F>
  void fillByPoint(F&& fn) {
    dist_.forEachOwned(comm_->rank(),
                       [&](const layout::Point& p, layout::Index off) {
                         data_[static_cast<size_t>(off)] = fn(p);
                       });
  }

  /// Collective test/debug oracle: the full array (row-major) everywhere.
  std::vector<T> gatherGlobal() const {
    auto rows = comm_->allgather<T>(std::span<const T>(data_));
    std::vector<T> out(static_cast<size_t>(globalShape().numElements()), T{});
    for (int proc = 0; proc < comm_->size(); ++proc) {
      dist_.forEachOwned(proc, [&](const layout::Point& p, layout::Index off) {
        out[static_cast<size_t>(rowMajorOffset(globalShape(), p))] =
            rows[static_cast<size_t>(proc)][static_cast<size_t>(off)];
      });
    }
    return out;
  }

 private:
  transport::Comm* comm_;
  HpfDist dist_;
  std::vector<T> data_;
};

}  // namespace mc::hpfrt
