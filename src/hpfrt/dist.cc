#include "hpfrt/dist.h"

#include "layout/block_decomp.h"

namespace mc::hpfrt {

using layout::Index;
using layout::Point;
using layout::Shape;

HpfDist::HpfDist(Shape global, std::vector<DimDist> dims)
    : global_(global), dims_(std::move(dims)) {
  MC_REQUIRE(static_cast<int>(dims_.size()) == global_.rank,
             "distribution rank %zu != array rank %d", dims_.size(),
             global_.rank);
  nprocs_ = 1;
  for (const DimDist& d : dims_) {
    MC_REQUIRE(d.procs > 0);
    MC_REQUIRE(d.kind != DistKind::kBlockCyclic || d.param > 0,
               "CYCLIC(k) needs k > 0");
    nprocs_ *= d.procs;
  }
}

HpfDist HpfDist::blockEveryDim(Shape global, int nprocs) {
  const std::vector<int> grid = layout::chooseProcGrid(nprocs, global.rank);
  std::vector<DimDist> dims;
  dims.reserve(static_cast<size_t>(global.rank));
  for (int d = 0; d < global.rank; ++d) {
    dims.push_back(DimDist{DistKind::kBlock, grid[static_cast<size_t>(d)], 1});
  }
  return HpfDist(global, std::move(dims));
}

std::vector<int> HpfDist::procCoord(int proc) const {
  MC_REQUIRE(proc >= 0 && proc < nprocs_);
  std::vector<int> coord(dims_.size());
  for (int d = global_.rank - 1; d >= 0; --d) {
    coord[static_cast<size_t>(d)] = proc % dims_[static_cast<size_t>(d)].procs;
    proc /= dims_[static_cast<size_t>(d)].procs;
  }
  return coord;
}

int HpfDist::procAt(const std::vector<int>& coord) const {
  MC_REQUIRE(coord.size() == dims_.size());
  int proc = 0;
  for (int d = 0; d < global_.rank; ++d) {
    const auto dd = static_cast<size_t>(d);
    MC_REQUIRE(coord[dd] >= 0 && coord[dd] < dims_[dd].procs);
    proc = proc * dims_[dd].procs + coord[dd];
  }
  return proc;
}

int HpfDist::ownerInDim(int d, Index g) const {
  const DimDist& dd = dims_[static_cast<size_t>(d)];
  const Index n = global_[d];
  MC_REQUIRE(g >= 0 && g < n);
  switch (dd.kind) {
    case DistKind::kBlock: {
      const Index block = (n + dd.procs - 1) / dd.procs;
      return static_cast<int>(g / block);
    }
    case DistKind::kCyclic:
      return static_cast<int>(g % dd.procs);
    case DistKind::kBlockCyclic:
      return static_cast<int>((g / dd.param) % dd.procs);
  }
  MC_CHECK(false);
  return -1;
}

Index HpfDist::localIndexInDim(int d, Index g) const {
  const DimDist& dd = dims_[static_cast<size_t>(d)];
  const Index n = global_[d];
  switch (dd.kind) {
    case DistKind::kBlock: {
      const Index block = (n + dd.procs - 1) / dd.procs;
      return g % block;
    }
    case DistKind::kCyclic:
      return g / dd.procs;
    case DistKind::kBlockCyclic: {
      const Index k = dd.param;
      return (g / (static_cast<Index>(dd.procs) * k)) * k + g % k;
    }
  }
  MC_CHECK(false);
  return -1;
}

Index HpfDist::localCountInDim(int d, int c) const {
  const DimDist& dd = dims_[static_cast<size_t>(d)];
  const Index n = global_[d];
  switch (dd.kind) {
    case DistKind::kBlock: {
      const Index block = (n + dd.procs - 1) / dd.procs;
      const Index lo = block * c;
      return std::max<Index>(0, std::min(n, lo + block) - lo);
    }
    case DistKind::kCyclic:
      return n > c ? (n - c - 1) / dd.procs + 1 : 0;
    case DistKind::kBlockCyclic: {
      const Index k = dd.param;
      const Index nBlocks = (n + k - 1) / k;  // global block count
      const Index owned =
          nBlocks > c ? (nBlocks - c - 1) / dd.procs + 1 : 0;
      Index count = owned * k;
      // The final global block may be short; subtract the shortfall if mine.
      const Index lastLen = n - (nBlocks - 1) * k;
      if (owned > 0 && (nBlocks - 1) % dd.procs == c &&
          (nBlocks - 1) / dd.procs == owned - 1) {
        count -= k - lastLen;
      }
      return count;
    }
  }
  MC_CHECK(false);
  return -1;
}

Index HpfDist::globalFromLocal(int d, int c, Index li) const {
  const DimDist& dd = dims_[static_cast<size_t>(d)];
  const Index n = global_[d];
  switch (dd.kind) {
    case DistKind::kBlock: {
      const Index block = (n + dd.procs - 1) / dd.procs;
      return block * c + li;
    }
    case DistKind::kCyclic:
      return c + li * dd.procs;
    case DistKind::kBlockCyclic: {
      const Index k = dd.param;
      const Index blockIdx = li / k;  // which of my blocks
      const Index within = li % k;
      return (blockIdx * dd.procs + c) * k + within;
    }
  }
  MC_CHECK(false);
  return -1;
}

int HpfDist::ownerOf(const Point& p) const {
  MC_REQUIRE(p.rank == global_.rank);
  // Row-major over grid coordinates, without allocation (hot path in the
  // schedule builders).
  int proc = 0;
  for (int d = 0; d < global_.rank; ++d) {
    proc = proc * dims_[static_cast<size_t>(d)].procs + ownerInDim(d, p[d]);
  }
  return proc;
}

Shape HpfDist::localShape(int proc) const {
  MC_REQUIRE(proc >= 0 && proc < nprocs_);
  std::array<int, layout::kMaxRank> coord{};
  int rem = proc;
  for (int d = global_.rank - 1; d >= 0; --d) {
    const int g = dims_[static_cast<size_t>(d)].procs;
    coord[static_cast<size_t>(d)] = rem % g;
    rem /= g;
  }
  Shape s;
  s.rank = global_.rank;
  for (int d = 0; d < global_.rank; ++d) {
    s[d] = localCountInDim(d, coord[static_cast<size_t>(d)]);
  }
  return s;
}

Index HpfDist::localOffset(int proc, const Point& p) const {
  MC_REQUIRE(ownerOf(p) == proc, "point not owned by processor %d", proc);
  const Shape local = localShape(proc);
  Point li;
  li.rank = p.rank;
  for (int d = 0; d < p.rank; ++d) li[d] = localIndexInDim(d, p[d]);
  return rowMajorOffset(local, li);
}

}  // namespace mc::hpfrt
