// Tulip-style distributed collections (the pC++ runtime).
//
// pC++ [Bodin, Beckman, Gannon et al.; Scientific Programming 1993] executes
// methods over *collections* of element objects distributed across
// processors; its runtime, Tulip, provides element placement and access.
// The paper reports that the Indiana pC++ group implemented the Meta-Chaos
// interface functions for Tulip "in a few days" — the library is small, and
// so is this reproduction of it: a 1-D collection of trivially copyable
// element objects with BLOCK or CYCLIC placement, plus exactly the inquiry
// surface Meta-Chaos needs (owner, local offset, element enumeration).
#pragma once

#include <span>
#include <vector>

#include "layout/index.h"
#include "transport/comm.h"

namespace mc::tulip {

enum class Placement { kBlock, kCyclic };

/// Compact distribution descriptor for a collection.
struct TulipDesc {
  layout::Index size = 0;
  int nprocs = 1;
  Placement placement = Placement::kBlock;

  int ownerOf(layout::Index e) const {
    MC_REQUIRE(e >= 0 && e < size);
    if (placement == Placement::kBlock) {
      const layout::Index block = (size + nprocs - 1) / nprocs;
      return static_cast<int>(e / block);
    }
    return static_cast<int>(e % nprocs);
  }

  layout::Index localOffsetOf(layout::Index e) const {
    MC_REQUIRE(e >= 0 && e < size);
    if (placement == Placement::kBlock) {
      const layout::Index block = (size + nprocs - 1) / nprocs;
      return e % block;
    }
    return e / nprocs;
  }

  layout::Index localCount(int proc) const {
    if (placement == Placement::kBlock) {
      const layout::Index block = (size + nprocs - 1) / nprocs;
      const layout::Index lo = block * proc;
      return std::max<layout::Index>(0, std::min(size, lo + block) - lo);
    }
    return size > proc ? (size - proc - 1) / nprocs + 1 : 0;
  }

  layout::Index globalOf(int proc, layout::Index localOff) const {
    if (placement == Placement::kBlock) {
      const layout::Index block = (size + nprocs - 1) / nprocs;
      return block * proc + localOff;
    }
    return proc + localOff * nprocs;
  }
};

/// A distributed collection of element objects of type T.
template <typename T>
class Collection {
  static_assert(std::is_trivially_copyable_v<T>,
                "Tulip elements must be trivially copyable objects");

 public:
  Collection(transport::Comm& comm, layout::Index size,
             Placement placement = Placement::kBlock)
      : comm_(&comm), desc_{size, comm.size(), placement} {
    MC_REQUIRE(size >= 0);
    elements_.assign(static_cast<size_t>(desc_.localCount(comm.rank())), T{});
  }

  transport::Comm& comm() const { return *comm_; }
  const TulipDesc& desc() const { return desc_; }
  layout::Index size() const { return desc_.size; }
  layout::Index localCount() const {
    return static_cast<layout::Index>(elements_.size());
  }

  std::span<T> raw() { return elements_; }
  std::span<const T> raw() const { return elements_; }

  /// Access an owned element by global index.
  T& at(layout::Index e) {
    MC_REQUIRE(desc_.ownerOf(e) == comm_->rank(),
               "element %lld is not owned by this processor",
               static_cast<long long>(e));
    return elements_[static_cast<size_t>(desc_.localOffsetOf(e))];
  }
  const T& at(layout::Index e) const {
    MC_REQUIRE(desc_.ownerOf(e) == comm_->rank(),
               "element %lld is not owned by this processor",
               static_cast<long long>(e));
    return elements_[static_cast<size_t>(desc_.localOffsetOf(e))];
  }

  /// Owner-computes iteration: fn(globalIndex, element&) on owned elements,
  /// in local storage order — pC++'s method-over-collection execution model.
  template <typename F>
  void forEachOwned(F&& fn) {
    for (size_t i = 0; i < elements_.size(); ++i) {
      fn(desc_.globalOf(comm_->rank(), static_cast<layout::Index>(i)),
         elements_[i]);
    }
  }

  /// Collective test/debug oracle: all elements in global order, everywhere.
  std::vector<T> gatherGlobal() const {
    auto rows = comm_->allgather<T>(std::span<const T>(elements_));
    std::vector<T> out(static_cast<size_t>(desc_.size), T{});
    for (int proc = 0; proc < comm_->size(); ++proc) {
      const auto& row = rows[static_cast<size_t>(proc)];
      for (size_t i = 0; i < row.size(); ++i) {
        out[static_cast<size_t>(
            desc_.globalOf(proc, static_cast<layout::Index>(i)))] = row[i];
      }
    }
    return out;
  }

 private:
  transport::Comm* comm_;
  TulipDesc desc_;
  std::vector<T> elements_;
};

}  // namespace mc::tulip
