// Cross-rank aggregation of metric snapshots.
//
// Every rank holds its own MetricsRegistry; a report wants min/mean/max/
// stddev *over ranks* for each metric.  aggregate() reduces one RunningStat
// per metric over the program with RunningStat::merge (the parallel-variance
// combine), using the transport's binomial allreduce — the tree shape is
// fixed by rank, so the floating-point combination order, and therefore the
// result, is deterministic and identical on every rank.
//
// Header-only on purpose: obs (the library) stays below transport in the
// dependency order; only translation units that already link transport can
// aggregate.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.h"
#include "transport/comm.h"
#include "util/hash.h"
#include "util/stats.h"

namespace mc::obs {

/// Aggregates `snapshot` over the calling program: result[name] holds the
/// distribution of that metric's per-rank values.  Collective; every rank
/// must pass an identical key set (SPMD snapshots of the same registries) —
/// verified with a digest agreement round so a mismatch fails loudly
/// instead of silently pairing different metrics.
inline std::map<std::string, RunningStat> aggregate(transport::Comm& comm,
                                                    const Snapshot& snapshot) {
  HashStream h;
  h.str("obs.aggregate.keys");
  for (const auto& [key, value] : snapshot.values) h.str(key);
  const std::uint64_t mine = h.digest()[0];
  const std::uint64_t lo = comm.allreduceValue(
      mine, [](std::uint64_t a, std::uint64_t b) { return a < b ? a : b; });
  const std::uint64_t hi = comm.allreduceValue(
      mine, [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  MC_REQUIRE(lo == hi,
             "obs::aggregate: ranks disagree on the metric key set");

  std::map<std::string, RunningStat> out;
  for (const auto& [key, value] : snapshot.values) {
    RunningStat s;
    s.add(value);
    out[key] = comm.allreduceValue(s, [](RunningStat a, const RunningStat& b) {
      a.merge(b);
      return a;
    });
  }
  return out;
}

}  // namespace mc::obs
