// Chrome trace_event export of recorded phase spans.
//
// Each rank hands its registry's spans to a TraceCollector (the only
// mutex-guarded structure in the obs layer — ranks are threads);
// writeChromeTrace then emits the Trace Event Format JSON that
// chrome://tracing and https://ui.perfetto.dev load directly.  Spans become
// complete ("ph":"X") events on the *virtual* timeline — ts/dur are the
// rank's virtual clock in microseconds — with the measured thread-CPU
// seconds attached as an argument, so an overlap pipeline (split-phase
// sends riding under interior computation) is visually inspectable: the
// compute span and the recvWait span of one step sit side by side instead
// of stacking.
//
// pid = program id, tid = global rank; metadata events name both.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mc::obs {

/// Spans of one rank, tagged for the trace timeline.
struct RankTrace {
  int program = 0;      // trace pid
  int globalRank = 0;   // trace tid
  std::string label;    // thread_name metadata ("prog/rank")
  std::vector<SpanRecord> spans;
};

class TraceCollector {
 public:
  /// Thread-safe; typically called once per rank at the end of a world
  /// region with threadRegistry().takeSpans().
  void add(int program, int globalRank, std::string label,
           std::vector<SpanRecord> spans) {
    std::lock_guard<std::mutex> lock(mutex_);
    ranks_.push_back(RankTrace{program, globalRank, std::move(label),
                               std::move(spans)});
  }

  /// Collected traces, sorted by (program, globalRank) for deterministic
  /// output regardless of rank completion order.
  std::vector<RankTrace> sorted() const;

 private:
  mutable std::mutex mutex_;
  std::vector<RankTrace> ranks_;
};

/// Renders the Trace Event Format JSON for the collected spans.
std::string renderChromeTrace(const TraceCollector& collector);

/// Renders and writes to `path`.
void writeChromeTrace(const std::string& path,
                      const TraceCollector& collector);

}  // namespace mc::obs
