// RAII phase spans over the thread's MetricsRegistry.
//
// `ScopedSpan span(obs::phase::kPack);` records a SpanRecord from
// construction to destruction when observability is enabled, and does
// *nothing* — one relaxed atomic load — when it is not.  Spans nest (RAII
// scopes are LIFO), and each record carries its nesting depth, its virtual
// begin/end (the rank's Comm clock, when installed) and its thread-CPU
// begin/end.
#pragma once

#include "obs/metrics.h"

namespace mc::obs {

class ScopedSpan {
 public:
  /// `name` must outlive the registry (string literal; phase:: constants).
  explicit ScopedSpan(const char* name) {
    if (!enabled()) return;
    reg_ = &threadRegistry();
    idx_ = reg_->beginSpan(name);
  }
  ~ScopedSpan() { end(); }

  /// Ends the span now instead of at scope exit (idempotent).  Spans still
  /// close LIFO: end an inner span before its enclosing one.
  void end() {
    if (reg_ != nullptr) reg_->endSpan(idx_);
    reg_ = nullptr;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry* reg_ = nullptr;  // null when disabled at construction
  std::size_t idx_ = 0;
};

}  // namespace mc::obs
