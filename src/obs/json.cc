#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/format.h"

namespace mc::obs {

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::comma() {
  if (afterKey_) {
    afterKey_ = false;
    return;  // value follows its key, no comma
  }
  if (needComma_) out_ += ", ";
}

void JsonWriter::open(char c) {
  comma();
  out_ += c;
  needComma_ = false;
}

void JsonWriter::close(char c) {
  out_ += c;
  needComma_ = true;
}

namespace {

void appendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void JsonWriter::key(std::string_view name) {
  MC_REQUIRE(!afterKey_, "json key '%.*s' follows another key",
             static_cast<int>(name.size()), name.data());
  if (needComma_) out_ += ", ";
  out_ += '"';
  appendEscaped(out_, name);
  out_ += "\": ";
  afterKey_ = true;
  needComma_ = false;
}

void JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/inf literals
  } else if (v == static_cast<double>(static_cast<long long>(v)) &&
             std::abs(v) < 9.0e15) {
    out_ += strprintf("%lld", static_cast<long long>(v));
  } else {
    out_ += strprintf("%.9g", v);
  }
  needComma_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += strprintf("%llu", static_cast<unsigned long long>(v));
  needComma_ = true;
}

void JsonWriter::value(long long v) {
  comma();
  out_ += strprintf("%lld", v);
  needComma_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  appendEscaped(out_, s);
  out_ += '"';
  needComma_ = true;
}

void JsonWriter::null() {
  comma();
  out_ += "null";
  needComma_ = true;
}

// --- BenchReport ------------------------------------------------------------

void BenchReport::config(const std::string& key, double v) {
  ConfigEntry e;
  e.name = key;
  e.number = v;
  config_.push_back(std::move(e));
}

void BenchReport::config(const std::string& key, const std::string& v) {
  ConfigEntry e;
  e.name = key;
  e.isString = true;
  e.str = v;
  config_.push_back(std::move(e));
}

BenchReport::Case& BenchReport::addCase(const std::string& name) {
  cases_.push_back(Case(name));
  return cases_.back();
}

void BenchReport::Case::metric(const std::string& name, double v) {
  MetricValue m;
  m.number = v;
  metrics_[name] = m;
}

void BenchReport::Case::metric(const std::string& name,
                               const RunningStat& s) {
  MetricValue m;
  m.kind = MetricValue::Kind::kStat;
  m.stat = s;
  metrics_[name] = m;
}

void BenchReport::Case::metric(const std::string& name, const Reservoir& r) {
  MetricValue m;
  m.kind = MetricValue::Kind::kQuantileStat;
  m.stat = r.stat();
  m.p50 = r.p50();  // NaN when empty -> null in JSON
  m.p99 = r.p99();
  metrics_[name] = m;
}

namespace {

void writeMetric(JsonWriter& j, const MetricValue& m) {
  if (m.kind == MetricValue::Kind::kNumber) {
    j.value(m.number);
    return;
  }
  // An aggregated stat.  Empty accumulators are *explicit*: count 0 and
  // null moments, never a silent 0.0 that reads like a measurement.
  j.beginObject();
  j.kv("count", static_cast<std::uint64_t>(m.stat.count()));
  j.kv("mean", m.stat.mean());      // NaN -> null when empty
  j.kv("min", m.stat.min());
  j.kv("max", m.stat.max());
  j.kv("stddev", m.stat.stddev());
  j.kv("sum", m.stat.sum());
  if (m.kind == MetricValue::Kind::kQuantileStat) {
    j.kv("p50", m.p50);             // NaN -> null when empty
    j.kv("p99", m.p99);
  }
  j.endObject();
}

}  // namespace

std::string BenchReport::render() const {
  JsonWriter j;
  j.beginObject();
  j.kv("schema", "mc-bench-v1");
  j.kv("benchmark", benchmark_);
  j.key("config");
  j.beginObject();
  for (const ConfigEntry& e : config_) {
    if (e.isString) {
      j.kv(e.name, e.str);
    } else {
      j.kv(e.name, e.number);
    }
  }
  j.endObject();
  j.key("cases");
  j.beginArray();
  for (const Case& c : cases_) {
    j.beginObject();
    j.kv("name", c.name_);
    j.key("metrics");
    j.beginObject();
    for (const auto& [name, m] : c.metrics_) {
      j.key(name);
      writeMetric(j, m);
    }
    j.endObject();
    j.endObject();
  }
  j.endArray();
  j.endObject();
  return j.str() + "\n";
}

void BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  MC_REQUIRE(out.good(), "cannot open '%s' for writing", path.c_str());
  out << render();
  MC_REQUIRE(out.good(), "write to '%s' failed", path.c_str());
}

}  // namespace mc::obs
