// The observability layer's per-rank metrics registry.
//
// Every counter in the system — transport::TrafficStats, the BufferPool,
// core::BuildStats, the schedule caches — registers a named *sampler* into
// the calling virtual processor's MetricsRegistry, which then becomes the
// single source of truth for instrumentation: a Snapshot samples every
// registered counter at once, and the cost of any code region is simply
// `after - before` (epoch snapshot/diff).  Counters stay owned by their
// subsystems; the registry only holds read callbacks, so registration adds
// nothing to any hot path.
//
// Phase-scoped Spans record named regions (build / pack / send / recvWait /
// unpack / apply / compute) against both the *virtual* clock (installed by
// transport::Comm when a rank starts) and the thread CPU clock
// (ThreadCpuTimer's CLOCK_THREAD_CPUTIME_ID).  Spans nest: each record
// carries its depth, so an exporter can reconstruct the call tree.
//
// The registry is per virtual processor (thread_local, like
// core::defaultScheduleCache()): each rank of a World runs on its own
// thread, so no locking is needed anywhere in the layer except the
// TraceCollector that merges ranks' spans for export.
//
// Disabled-mode overhead contract: obs::enabled() is a single relaxed
// atomic load, and every span/record entry point checks it first — with
// observability off (the default) the layer performs no allocation, no
// clock read, and no registry access on any hot path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/timer.h"

namespace mc::obs {

namespace detail {
inline std::atomic<bool>& enabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// Whether span recording is on.  Counters register and sample regardless —
/// they are plain struct fields owned by their subsystems — but spans only
/// record (and pay their two clock reads) when enabled.
inline bool enabled() {
  return detail::enabledFlag().load(std::memory_order_relaxed);
}
/// Process-wide switch; set it before the world runs (read by every rank).
inline void setEnabled(bool on) {
  detail::enabledFlag().store(on, std::memory_order_relaxed);
}

/// Canonical phase names, so every subsystem and exporter agrees.
namespace phase {
inline constexpr const char* kBuild = "build";
inline constexpr const char* kPack = "pack";
inline constexpr const char* kSend = "send";
inline constexpr const char* kRecvWait = "recvWait";
inline constexpr const char* kUnpack = "unpack";
inline constexpr const char* kApply = "apply";
inline constexpr const char* kCompute = "compute";
}  // namespace phase

/// A point-in-time sample of every registered counter.  Ordered map so
/// iteration (and therefore JSON emission and cross-rank aggregation order)
/// is deterministic.
struct Snapshot {
  std::map<std::string, double> values;

  /// Value of `name`; requires the metric to be present.
  double get(const std::string& name) const {
    const auto it = values.find(name);
    MC_REQUIRE(it != values.end(), "snapshot has no metric named '%s'",
               name.c_str());
    return it->second;
  }
  bool has(const std::string& name) const {
    return values.find(name) != values.end();
  }
};

/// Epoch diff: the cost of a code region is after - before, key by key.
/// Keys present only in `after` (counters registered mid-region) diff
/// against zero; keys that vanished are dropped.
inline Snapshot operator-(const Snapshot& after, const Snapshot& before) {
  Snapshot d;
  for (const auto& [key, v] : after.values) {
    const auto it = before.values.find(key);
    d.values[key] = it == before.values.end() ? v : v - it->second;
  }
  return d;
}

/// One recorded phase span.  `name` must point at storage that outlives the
/// registry (string literals; the phase:: constants).
struct SpanRecord {
  const char* name = "";
  int depth = 0;           // nesting depth at begin (0 = top level)
  double virtualBegin = 0;  // rank's virtual clock (comm.now()), seconds
  double virtualEnd = 0;
  double cpuBegin = 0;  // thread CPU clock, seconds
  double cpuEnd = 0;

  double virtualSeconds() const { return virtualEnd - virtualBegin; }
  double cpuSeconds() const { return cpuEnd - cpuBegin; }
};

class MetricsRegistry {
 public:
  using Sampler = std::function<double()>;

  /// Registers a named counter.  Names are dotted paths
  /// ("transport.messages_sent"); each must be unique within the registry.
  void registerCounter(std::string name, Sampler sampler) {
    MC_REQUIRE(static_cast<bool>(sampler), "counter '%s' has no sampler",
               name.c_str());
    MC_REQUIRE(!has(name), "metric '%s' is already registered", name.c_str());
    counters_.emplace_back(std::move(name), std::move(sampler));
  }

  bool has(const std::string& name) const {
    for (const auto& [n, s] : counters_) {
      if (n == name) return true;
    }
    return false;
  }

  /// Drops every counter whose name starts with `prefix` (a subsystem
  /// unregistering on destruction, e.g. transport.* when a Comm dies).
  void unregisterPrefix(const std::string& prefix) {
    std::erase_if(counters_, [&](const auto& c) {
      return c.first.compare(0, prefix.size(), prefix) == 0;
    });
  }

  /// Samples every registered counter.
  Snapshot snapshot() const {
    Snapshot s;
    for (const auto& [name, sampler] : counters_) {
      s.values[name] = sampler();
    }
    return s;
  }

  // --- virtual clock source -------------------------------------------------

  /// Installs the rank's virtual clock (transport::Comm does this on
  /// construction) so spans can record virtual begin/end times.
  void setVirtualClock(std::function<double()> clock) {
    virtualClock_ = std::move(clock);
  }
  void clearVirtualClock() { virtualClock_ = nullptr; }
  /// The rank's virtual time, or 0 when no clock is installed (code running
  /// outside a world, e.g. a bench's wall-clock part).
  double virtualNow() const { return virtualClock_ ? virtualClock_() : 0.0; }

  // --- spans ----------------------------------------------------------------

  /// Opens a span; returns its record index (or kDroppedSpan past the
  /// bound).  Use ScopedSpan (span.h) instead of calling this directly.
  std::size_t beginSpan(const char* name) {
    if (spans_.size() >= kMaxSpans) {
      ++droppedSpans_;
      ++depth_;  // keep nesting bookkeeping consistent for endSpan
      return kDroppedSpan;
    }
    SpanRecord r;
    r.name = name;
    r.depth = depth_++;
    r.virtualBegin = virtualNow();
    r.cpuBegin = threadCpuSeconds();
    spans_.push_back(r);
    return spans_.size() - 1;
  }

  void endSpan(std::size_t idx) {
    --depth_;
    if (idx == kDroppedSpan) return;
    SpanRecord& r = spans_[idx];
    r.virtualEnd = virtualNow();
    r.cpuEnd = threadCpuSeconds();
  }

  int spanDepth() const { return depth_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// Moves the recorded spans out (e.g. into a TraceCollector) and resets.
  std::vector<SpanRecord> takeSpans() {
    std::vector<SpanRecord> out = std::move(spans_);
    spans_.clear();
    droppedSpans_ = 0;
    return out;
  }
  void clearSpans() {
    spans_.clear();
    droppedSpans_ = 0;
  }
  /// Spans not recorded because the per-rank bound was hit.
  std::size_t droppedSpans() const { return droppedSpans_; }

  static constexpr std::size_t kDroppedSpan =
      static_cast<std::size_t>(-1);

 private:
  static constexpr std::size_t kMaxSpans = std::size_t{1} << 20;

  // Registration order; linear lookup is fine (registration is rare and
  // sampling walks the whole list anyway).
  std::vector<std::pair<std::string, Sampler>> counters_;
  std::function<double()> virtualClock_;
  std::vector<SpanRecord> spans_;
  int depth_ = 0;
  std::size_t droppedSpans_ = 0;
};

/// The calling virtual processor's registry (one per rank thread, like the
/// per-rank schedule caches; the main thread gets its own for bench code
/// running outside a world).
MetricsRegistry& threadRegistry();

/// Registers the four CacheStats-shaped counters of `cache` — any type with
/// stats() returning a struct with hits/misses/insertions/evictions — under
/// `prefix`.  The cache must outlive the registry entries (unregisterPrefix
/// before it dies, or register only cache singletons).
template <typename C>
void registerCacheMetrics(MetricsRegistry& reg, const std::string& prefix,
                          const C& cache) {
  reg.registerCounter(prefix + ".hits", [&cache] {
    return static_cast<double>(cache.stats().hits);
  });
  reg.registerCounter(prefix + ".misses", [&cache] {
    return static_cast<double>(cache.stats().misses);
  });
  reg.registerCounter(prefix + ".insertions", [&cache] {
    return static_cast<double>(cache.stats().insertions);
  });
  reg.registerCounter(prefix + ".evictions", [&cache] {
    return static_cast<double>(cache.stats().evictions);
  });
}

}  // namespace mc::obs
