#include "obs/trace.h"

#include <algorithm>
#include <fstream>

#include "obs/json.h"
#include "util/error.h"

namespace mc::obs {

std::vector<RankTrace> TraceCollector::sorted() const {
  std::vector<RankTrace> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = ranks_;
  }
  std::sort(out.begin(), out.end(),
            [](const RankTrace& a, const RankTrace& b) {
              return a.program != b.program ? a.program < b.program
                                            : a.globalRank < b.globalRank;
            });
  return out;
}

std::string renderChromeTrace(const TraceCollector& collector) {
  JsonWriter j;
  j.beginObject();
  j.kv("displayTimeUnit", "ms");
  j.key("traceEvents");
  j.beginArray();
  for (const RankTrace& rank : collector.sorted()) {
    // Thread/process naming metadata.
    j.beginObject();
    j.kv("ph", "M");
    j.kv("name", "process_name");
    j.kv("pid", rank.program);
    j.key("args");
    j.beginObject();
    j.kv("name", "program " + std::to_string(rank.program));
    j.endObject();
    j.endObject();
    j.beginObject();
    j.kv("ph", "M");
    j.kv("name", "thread_name");
    j.kv("pid", rank.program);
    j.kv("tid", rank.globalRank);
    j.key("args");
    j.beginObject();
    j.kv("name", rank.label);
    j.endObject();
    j.endObject();
    for (const SpanRecord& s : rank.spans) {
      j.beginObject();
      j.kv("ph", "X");
      j.kv("name", s.name);
      j.kv("cat", "phase");
      j.kv("pid", rank.program);
      j.kv("tid", rank.globalRank);
      // Virtual-clock timeline, in microseconds as the format requires.
      j.kv("ts", s.virtualBegin * 1e6);
      j.kv("dur", s.virtualSeconds() * 1e6);
      j.key("args");
      j.beginObject();
      j.kv("depth", s.depth);
      j.kv("cpu_seconds", s.cpuSeconds());
      j.endObject();
      j.endObject();
    }
  }
  j.endArray();
  j.endObject();
  return j.str() + "\n";
}

void writeChromeTrace(const std::string& path,
                      const TraceCollector& collector) {
  std::ofstream out(path);
  MC_REQUIRE(out.good(), "cannot open '%s' for writing", path.c_str());
  out << renderChromeTrace(collector);
  MC_REQUIRE(out.good(), "write to '%s' failed", path.c_str());
}

}  // namespace mc::obs
