#include "obs/metrics.h"

namespace mc::obs {

MetricsRegistry& threadRegistry() {
  thread_local MetricsRegistry registry;
  return registry;
}

}  // namespace mc::obs
