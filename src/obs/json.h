// Structured-JSON emission for the observability layer.
//
// JsonWriter is a small streaming writer (comma management, string
// escaping, NaN/inf -> null) used by the trace exporter and the bench
// report.  BenchReport is the one emitter every BENCH_*.json goes through;
// it pins the "mc-bench-v1" schema validated by scripts/check_bench_json.py:
//
//   {
//     "schema": "mc-bench-v1",
//     "benchmark": "<name>",
//     "config":  { "<key>": number | string, ... },
//     "cases": [
//       { "name": "<case>",
//         "metrics": {
//           "<dotted.metric>": number | null,
//           "<dotted.metric>": { "count": N, "mean": x|null, "min": x|null,
//                                "max": x|null, "stddev": x|null,
//                                "sum": x }        // a RunningStat
//           "<dotted.metric>": { ...same six..., "p50": x|null,
//                                "p99": x|null }   // a Reservoir
//         } }, ... ]
//   }
//
// Conventions the schema checker enforces: keys are snake_case dotted
// paths; every time-valued metric name ends in "_seconds"; an *empty*
// RunningStat is explicit — count 0 and null mean/min/max/stddev — never a
// fake zero (the accounting bug this layer fixes).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace mc::obs {

class JsonWriter {
 public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  /// Object member key; must be followed by exactly one value/open call.
  void key(std::string_view name);

  /// Numbers: NaN and infinities emit null (JSON has no such literals).
  void value(double v);
  void value(std::uint64_t v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void null();

  void kv(std::string_view k, double v) { key(k); value(v); }
  void kv(std::string_view k, std::uint64_t v) { key(k); value(v); }
  void kv(std::string_view k, long long v) { key(k); value(v); }
  void kv(std::string_view k, int v) { key(k); value(v); }
  void kv(std::string_view k, std::string_view v) { key(k); value(v); }

  const std::string& str() const { return out_; }

 private:
  void open(char c);
  void close(char c);
  void comma();

  std::string out_;
  bool needComma_ = false;
  bool afterKey_ = false;
};

/// One metric value: a plain number, an aggregated RunningStat, or a
/// quantile stat (RunningStat moments + p50/p99 from a Reservoir).
struct MetricValue {
  enum class Kind { kNumber, kStat, kQuantileStat };
  Kind kind = Kind::kNumber;
  double number = 0;
  RunningStat stat;
  double p50 = 0;
  double p99 = 0;
};

/// The shared BENCH_*.json emitter (see file comment for the schema).
class BenchReport {
 public:
  explicit BenchReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  void config(const std::string& key, double v);
  void config(const std::string& key, const std::string& v);

  class Case {
   public:
    /// Plain numeric metric; names are dotted snake_case paths and
    /// time-valued metrics must end in "_seconds".
    void metric(const std::string& name, double v);
    /// Aggregated metric; an empty stat emits count 0 with null moments.
    void metric(const std::string& name, const RunningStat& s);
    /// Quantile metric: the six RunningStat fields plus "p50"/"p99" from
    /// the reservoir (null when empty) — eight fields total.
    void metric(const std::string& name, const Reservoir& r);

   private:
    friend class BenchReport;
    explicit Case(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::map<std::string, MetricValue> metrics_;
  };

  Case& addCase(const std::string& name);

  /// Renders the report (deterministic member order).
  std::string render() const;
  /// Renders and writes to `path`; requires the write to succeed.
  void write(const std::string& path) const;

 private:
  struct ConfigEntry {
    std::string name;
    bool isString = false;
    double number = 0;
    std::string str;
  };

  std::string benchmark_;
  std::vector<ConfigEntry> config_;  // insertion order
  std::vector<Case> cases_;
};

}  // namespace mc::obs
