// Meta-Chaos communication-schedule computation (paper Sections 4.1.3,
// Figure 8).
//
// Given a source SetOfRegions (data distributed by library X) and a
// destination SetOfRegions (library Y) with equal element counts, the
// builder pairs element i of the source linearization with element i of the
// destination linearization and derives, for every processor, which
// elements to send where / receive whence — aggregated to at most one
// message per processor pair.
//
// Two build methods, as in the paper (Section 5.1):
//
//  * duplication — every processor holds (or has been shipped) both
//    distribution descriptors, enumerates *both* linearizations locally,
//    and extracts its own plans.  No communication during the build, but
//    the ownership computation runs twice (hence ~2x the dereference cost
//    in Table 2), and for Chaos the descriptor itself is huge.
//
//  * cooperation — the source side enumerates only source ownership, the
//    destination side only destination ownership; the halves are joined at
//    the destination side (each destination processor owns a contiguous
//    chunk of linearization positions), which then returns each source
//    processor its send plan.  One ownership pass per side, at the price of
//    some build-time communication.
//
// Both intra-program builds (one program, two libraries) and inter-program
// builds (source and destination in different programs) are supported; all
// builds are collective over every program involved.
#pragma once

#include "core/adapter.h"
#include "core/registry.h"
#include "sched/schedule.h"

namespace mc::core {

enum class Method { kCooperation, kDuplication };

/// A Meta-Chaos communication schedule.  Sends' offsets index the local
/// source buffer; recvs' offsets index the local destination buffer; local
/// pairs (intra-program only) copy directly — Meta-Chaos never stages local
/// transfers through an intermediate buffer (Section 5.3).
struct McSchedule {
  sched::Schedule plan;
  layout::Index numElements = 0;
  /// -1 for intra-program schedules; otherwise the peer program id (send
  /// plans target its ranks).
  int remoteProgram = -1;
  bool isSender = false;  ///< inter-program only: which side this half is
};

/// Intra-program build: both data structures live in the calling program.
/// Collective over the program.
McSchedule computeSchedule(transport::Comm& comm, const DistObject& srcObj,
                           const SetOfRegions& srcSet,
                           const DistObject& dstObj,
                           const SetOfRegions& dstSet,
                           Method method = Method::kCooperation);

/// Inter-program build, source side: the calling program owns the source
/// data; the destination program (`remoteProgram`) must concurrently call
/// computeScheduleRecv.  Collective over both programs.
McSchedule computeScheduleSend(transport::Comm& comm, const DistObject& srcObj,
                               const SetOfRegions& srcSet, int remoteProgram,
                               Method method = Method::kCooperation);

/// Inter-program build, destination side.
McSchedule computeScheduleRecv(transport::Comm& comm, const DistObject& dstObj,
                               const SetOfRegions& dstSet, int remoteProgram,
                               Method method = Method::kCooperation);

/// Reverses a schedule: the same schedule then copies data the other way
/// (paper Section 4.3: "the communication schedule is also symmetric").
McSchedule reverseSchedule(const McSchedule& sched);

/// Telemetry from the last computeSchedule/computeScheduleSend/
/// computeScheduleRecv call on this thread (each virtual processor is a
/// thread, so the figures are per-rank): the bytes of ownership-table state
/// the build materialized.  The run-native builder keeps this proportional
/// to the number of runs; the element-wise reference path pays one entry
/// per element.
struct BuildStats {
  std::size_t ownershipTableBytes = 0;
  /// Built plans (sends + recvs) by the executor kernel each will dispatch
  /// to at bind time (sched::classifyPlan) — recorded at build time, so
  /// the dispatch distribution of a schedule is known before any executor
  /// binds it.
  std::size_t kernelContiguousPlans = 0;
  std::size_t kernelStridedPlans = 0;
  std::size_t kernelRunListPlans = 0;
  std::size_t kernelIndexListPlans = 0;
};
const BuildStats& lastBuildStats();

namespace testing {
/// Routes all schedule builds through the element-wise reference pipeline
/// (per-element chunk tables and joins) instead of the run-native interval
/// join.  Returns the previous setting.  The two pipelines produce
/// bit-identical schedules; this hook exists for the differential tests
/// and the build benchmark.  Set it outside World::run regions only — it
/// is global, not per-rank.
bool buildElementwiseForTest(bool enable);
/// Whether the element-wise reference pipeline is currently selected.
/// Production-path optimizations that must not leak into the oracle (e.g.
/// the chaos dereference cache) consult this.
bool buildElementwiseEnabled();
}  // namespace testing

}  // namespace mc::core
