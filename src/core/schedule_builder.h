// Meta-Chaos communication-schedule computation (paper Sections 4.1.3,
// Figure 8).
//
// Given a source SetOfRegions (data distributed by library X) and a
// destination SetOfRegions (library Y) with equal element counts, the
// builder pairs element i of the source linearization with element i of the
// destination linearization and derives, for every processor, which
// elements to send where / receive whence — aggregated to at most one
// message per processor pair.
//
// Two build methods, as in the paper (Section 5.1):
//
//  * duplication — every processor holds (or has been shipped) both
//    distribution descriptors, enumerates *both* linearizations locally,
//    and extracts its own plans.  No communication during the build, but
//    the ownership computation runs twice (hence ~2x the dereference cost
//    in Table 2), and for Chaos the descriptor itself is huge.
//
//  * cooperation — the source side enumerates only source ownership, the
//    destination side only destination ownership; the halves are joined at
//    the destination side (each destination processor owns a contiguous
//    chunk of linearization positions), which then returns each source
//    processor its send plan.  One ownership pass per side, at the price of
//    some build-time communication.
//
// Both intra-program builds (one program, two libraries) and inter-program
// builds (source and destination in different programs) are supported; all
// builds are collective over every program involved.
#pragma once

#include "core/adapter.h"
#include "core/registry.h"
#include "layout/dist_delta.h"
#include "sched/schedule.h"

namespace mc::core {

enum class Method { kCooperation, kDuplication };

/// Build provenance: one maximal greedy-coalesced segment of linearization
/// positions this rank *sources* (srcOwner == me).  Covers both remote
/// sends (dstOwner != me) and local copies (dstOwner == me).  Sorted by
/// lin, disjoint; the canonical greedy cut, so two builds of the same
/// distributions produce bit-identical segment streams.
struct SendSeg {
  layout::Index lin = 0;  ///< first linearization position of the segment
  layout::Index srcOff = 0;
  layout::Index dstOff = 0;
  layout::Index count = 0;
  layout::Index srcStride = 0;
  layout::Index dstStride = 0;
  layout::Index dstOwner = 0;
  bool operator==(const SendSeg&) const = default;
};

/// Build provenance: one segment this rank *receives* (dstOwner == me,
/// srcOwner != me).
struct RecvSeg {
  layout::Index lin = 0;
  layout::Index dstOff = 0;
  layout::Index count = 0;
  layout::Index dstStride = 0;
  layout::Index srcOwner = 0;
  bool operator==(const RecvSeg&) const = default;
};

/// A Meta-Chaos communication schedule.  Sends' offsets index the local
/// source buffer; recvs' offsets index the local destination buffer; local
/// pairs (intra-program only) copy directly — Meta-Chaos never stages local
/// transfers through an intermediate buffer (Section 5.3).
struct McSchedule {
  sched::Schedule plan;
  layout::Index numElements = 0;
  /// -1 for intra-program schedules; otherwise the peer program id (send
  /// plans target its ranks).
  int remoteProgram = -1;
  bool isSender = false;  ///< inter-program only: which side this half is
  /// Per-lin provenance recorded by the intra-program builders (empty for
  /// inter-program halves).  patchSchedule subtracts a DistDelta against
  /// these streams to rebuild only migrated intervals.
  bool hasProvenance = false;
  std::vector<SendSeg> sendSegs;
  std::vector<RecvSeg> recvSegs;
};

/// Intra-program build: both data structures live in the calling program.
/// Collective over the program.
McSchedule computeSchedule(transport::Comm& comm, const DistObject& srcObj,
                           const SetOfRegions& srcSet,
                           const DistObject& dstObj,
                           const SetOfRegions& dstSet,
                           Method method = Method::kCooperation);

/// Inter-program build, source side: the calling program owns the source
/// data; the destination program (`remoteProgram`) must concurrently call
/// computeScheduleRecv.  Collective over both programs.
McSchedule computeScheduleSend(transport::Comm& comm, const DistObject& srcObj,
                               const SetOfRegions& srcSet, int remoteProgram,
                               Method method = Method::kCooperation);

/// Inter-program build, destination side.
McSchedule computeScheduleRecv(transport::Comm& comm, const DistObject& dstObj,
                               const SetOfRegions& dstSet, int remoteProgram,
                               Method method = Method::kCooperation);

/// Reverses a schedule: the same schedule then copies data the other way
/// (paper Section 4.3: "the communication schedule is also symmetric").
/// Provenance is not carried through a reversal (reversed schedules are
/// not patchable).
McSchedule reverseSchedule(const McSchedule& sched);

/// True when `old` can be patched against new descriptors: it was built
/// intra-program with provenance recorded, and both new descriptors can be
/// enumerated locally (patching is communication-free).
bool patchableSchedule(const McSchedule& old, const DistObject& newSrcObj,
                       const DistObject& newDstObj);

/// Patches a cached schedule across a repartitioning instead of a full
/// inspector rebuild.  `delta` marks every linearization position whose
/// (owner, offset) mapping changed on either side (over-approximation is
/// safe); `newSrcObj`/`newDstObj` describe the *new* distributions.  Only
/// segments intersecting the delta are re-derived (one local ownership
/// enumeration per migrated interval); everything else is reused from the
/// old schedule's provenance via two-pointer interval subtraction.  The
/// result — plans and provenance — is bit-identical to a fresh
/// computeSchedule of the new distributions, so patched schedules are
/// themselves patchable.  Collective only in modeled cost (no messages);
/// every rank must call it with the same delta.
McSchedule patchSchedule(transport::Comm& comm, const McSchedule& old,
                         const layout::DistDelta& delta,
                         const DistObject& newSrcObj,
                         const SetOfRegions& srcSet,
                         const DistObject& newDstObj,
                         const SetOfRegions& dstSet);

/// Computes the DistDelta between two distributions of the same set: the
/// linearization positions whose (owner, offset) mapping differs.  Both
/// descriptors must support local enumeration; communication-free.
layout::DistDelta computeDelta(const DistObject& oldObj,
                               const DistObject& newObj,
                               const SetOfRegions& set);

/// Maps a sorted list of migrated global indices (e.g. from
/// chaos::migratedGlobals) to linearization positions of `set`.  Supports
/// index-list and range regions (the kinds whose elements *are* global
/// indices).
layout::DistDelta deltaFromMigratedIndices(
    const SetOfRegions& set, std::span<const layout::Index> sortedMigrated);

/// Builds the data-redistribution move for a repartitioning: a run-native
/// schedule that migrates the payloads of delta-marked elements from their
/// old homes (offsets into the *old* local buffer) to their new homes
/// (offsets into the *new* local buffer).  Unmarked elements keep their
/// (owner, offset) by the delta contract, so the caller carries them over
/// by straight copy.  Both descriptors must support local enumeration.
sched::Schedule buildRedistMove(transport::Comm& comm,
                                const DistObject& oldObj,
                                const DistObject& newObj,
                                const SetOfRegions& set,
                                const layout::DistDelta& delta);

/// Telemetry from the last computeSchedule/computeScheduleSend/
/// computeScheduleRecv call on this thread (each virtual processor is a
/// thread, so the figures are per-rank): the bytes of ownership-table state
/// the build materialized.  The run-native builder keeps this proportional
/// to the number of runs; the element-wise reference path pays one entry
/// per element.
struct BuildStats {
  std::size_t ownershipTableBytes = 0;
  /// Built plans (sends + recvs) by the executor kernel each will dispatch
  /// to at bind time (sched::classifyPlan) — recorded at build time, so
  /// the dispatch distribution of a schedule is known before any executor
  /// binds it.
  std::size_t kernelContiguousPlans = 0;
  std::size_t kernelStridedPlans = 0;
  std::size_t kernelRunListPlans = 0;
  std::size_t kernelIndexListPlans = 0;
};
const BuildStats& lastBuildStats();

/// Telemetry from the last patchSchedule call on this thread.
struct PatchStats {
  std::size_t segmentsReused = 0;   ///< old provenance slices kept as-is
  std::size_t segmentsRebuilt = 0;  ///< fresh segments from delta intervals
  layout::Index elementsPatched = 0;  ///< delta positions re-derived
};
const PatchStats& lastPatchStats();

namespace testing {
/// Routes all schedule builds through the element-wise reference pipeline
/// (per-element chunk tables and joins) instead of the run-native interval
/// join.  Returns the previous setting.  The two pipelines produce
/// bit-identical schedules; this hook exists for the differential tests
/// and the build benchmark.  Set it outside World::run regions only — it
/// is global, not per-rank.
bool buildElementwiseForTest(bool enable);
/// Whether the element-wise reference pipeline is currently selected.
/// Production-path optimizations that must not leak into the oracle (e.g.
/// the chaos dereference cache) consult this.
bool buildElementwiseEnabled();
}  // namespace testing

}  // namespace mc::core
