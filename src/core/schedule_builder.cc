#include "core/schedule_builder.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sched/kernels.h"

namespace mc::core {

using layout::Index;
using sched::LocalRun;
using sched::OffsetRun;

namespace {

std::atomic<bool> g_buildElementwise{false};
thread_local BuildStats g_buildStats;
thread_local PatchStats g_patchStats;
// Monotone per-rank build telemetry for the obs registry (g_buildStats
// itself resets per build, so it cannot serve snapshot/diff accounting).
thread_local std::uint64_t g_buildCount = 0;
thread_local std::uint64_t g_tableBytesTotal = 0;
thread_local std::uint64_t g_kernelContiguous = 0;
thread_local std::uint64_t g_kernelStrided = 0;
thread_local std::uint64_t g_kernelRunList = 0;
thread_local std::uint64_t g_kernelIndexList = 0;
thread_local std::uint64_t g_patchCount = 0;
thread_local std::uint64_t g_patchElementsTotal = 0;

/// Registers the builder's counters into the rank's registry (idempotent;
/// called from every build entry point so the metrics exist as soon as a
/// rank builds anything).
void ensureBuildMetrics() {
  obs::MetricsRegistry& reg = obs::threadRegistry();
  if (reg.has("build.count")) return;
  reg.registerCounter("build.count",
                      [] { return static_cast<double>(g_buildCount); });
  reg.registerCounter("build.ownership_table_bytes_total", [] {
    return static_cast<double>(g_tableBytesTotal);
  });
  reg.registerCounter("build.kernel_contiguous_plans", [] {
    return static_cast<double>(g_kernelContiguous);
  });
  reg.registerCounter("build.kernel_strided_plans", [] {
    return static_cast<double>(g_kernelStrided);
  });
  reg.registerCounter("build.kernel_run_list_plans", [] {
    return static_cast<double>(g_kernelRunList);
  });
  reg.registerCounter("build.kernel_index_list_plans", [] {
    return static_cast<double>(g_kernelIndexList);
  });
  reg.registerCounter("build.patch_count",
                      [] { return static_cast<double>(g_patchCount); });
  reg.registerCounter("build.patch_elements_total", [] {
    return static_cast<double>(g_patchElementsTotal);
  });
}

/// Classifies the built plans by the executor kernel each will dispatch to
/// (sched::classifyPlan is a pure function of the plan, so this is exactly
/// what a later Executor bind decides).
void recordKernelDispatch(const sched::Schedule& plan) {
  const auto note = [](const sched::OffsetPlan& p) {
    switch (sched::classifyPlan(p)) {
      case sched::KernelKind::kEmpty:
        break;
      case sched::KernelKind::kContiguous:
        ++g_buildStats.kernelContiguousPlans;
        break;
      case sched::KernelKind::kStrided:
        ++g_buildStats.kernelStridedPlans;
        break;
      case sched::KernelKind::kRunList:
        ++g_buildStats.kernelRunListPlans;
        break;
      case sched::KernelKind::kIndexList:
        ++g_buildStats.kernelIndexListPlans;
        break;
    }
  };
  for (const sched::OffsetPlan& p : plan.sends) note(p);
  for (const sched::OffsetPlan& p : plan.recvs) note(p);
}

/// Accounts one finished build into the monotone counters.
void noteBuildDone() {
  ++g_buildCount;
  g_tableBytesTotal += g_buildStats.ownershipTableBytes;
  g_kernelContiguous += g_buildStats.kernelContiguousPlans;
  g_kernelStrided += g_buildStats.kernelStridedPlans;
  g_kernelRunList += g_buildStats.kernelRunListPlans;
  g_kernelIndexList += g_buildStats.kernelIndexListPlans;
}

// ---------------------------------------------------------------------------
// Wire formats.
//
// The cooperation method ships ownership information and marching orders
// between processors.  All streams are run-length encoded with strides:
// regular data produces long arithmetic runs (whole section rows), so the
// shipped volume stays proportional to the number of *blocks*, not the
// number of elements — matching the compact descriptors the original
// Meta-Chaos shipped for regular sections.  Fully irregular data degrades
// to count-1 runs, whose cost profile the paper's Chaos experiments show.
//
// Ownership runs ship as core::LinRun (the adapter inquiry type — the
// sender is implied by the lane); both builder pipelines produce identical
// streams, since the run-wise append helpers replicate the element-wise
// coalescing greedy exactly.
// ---------------------------------------------------------------------------

/// A source processor's marching order: `count` elements packed from
/// srcOff + k*srcStride going to dstOwner at dstOff + k*dstStride (the
/// destination offsets matter only for processor-local transfers).  Carries
/// the first linearization position so the same records double as the
/// schedule's provenance stream (SendSeg) — lanes merge only across
/// lin-contiguous records, which makes the greedy cut-invariant over any
/// sub-stream and the recorded segment cut canonical.
using SendRun = SendSeg;

/// A destination processor's marching order: `count` elements from srcOwner
/// unpacked into dstOff + k*dstStride.
using RecvRun = RecvSeg;

const LibraryAdapter& adapterFor(const DistObject& obj) {
  registerBuiltinAdapters();
  return Registry::instance().get(obj.library());
}

/// Cross-program personalized all-to-all.  Collective over *both* programs:
/// each processor passes one buffer per remote rank and receives one from
/// each.  Pairing relies on both programs making matching calls in order.
template <typename T>
std::vector<std::vector<T>> interAlltoall(
    transport::Comm& comm, int remoteProgram,
    const std::vector<std::vector<T>>& sendTo) {
  const int tag = comm.nextInterTag(remoteProgram);
  const int rp = comm.programInfo(remoteProgram).nprocs;
  MC_REQUIRE(static_cast<int>(sendTo.size()) == rp,
             "interAlltoall needs one lane per remote rank (%d), got %zu", rp,
             sendTo.size());
  for (int r = 0; r < rp; ++r) {
    comm.sendTo(remoteProgram, r, tag, sendTo[static_cast<size_t>(r)]);
  }
  std::vector<std::vector<T>> out(static_cast<size_t>(rp));
  for (int r = 0; r < rp; ++r) {
    out[static_cast<size_t>(r)] = comm.recvFrom<T>(remoteProgram, r, tag);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared run-wise emission helpers.
//
// Each replicates the corresponding element-wise greedy exactly (see
// sched::appendOffsetRun for the argument): lanes come out bit-identical
// no matter how the incoming element sequence is cut into runs.
// ---------------------------------------------------------------------------

/// Extends `lane` with a whole marching-order run, byte-identical to
/// emitting its elements one at a time through the element-wise emitSend.
void appendSendRun(std::vector<SendRun>& lane, SendRun run) {
  while (run.count > 0) {
    if (!lane.empty()) {
      SendRun& tail = lane.back();
      if (tail.dstOwner == run.dstOwner && run.lin == tail.lin + tail.count) {
        if (tail.count == 1) {
          tail.srcStride = run.srcOff - tail.srcOff;
          tail.dstStride = run.dstOff - tail.dstOff;
          ++tail.count;
          ++run.lin;
          run.srcOff += run.srcStride;
          run.dstOff += run.dstStride;
          --run.count;
          continue;
        }
        if (run.srcOff == tail.srcOff + tail.count * tail.srcStride &&
            run.dstOff == tail.dstOff + tail.count * tail.dstStride) {
          if (run.count == 1 || (run.srcStride == tail.srcStride &&
                                 run.dstStride == tail.dstStride)) {
            tail.count += run.count;
            return;
          }
          ++tail.count;
          ++run.lin;
          run.srcOff += run.srcStride;
          run.dstOff += run.dstStride;
          --run.count;
          continue;
        }
      }
    }
    if (run.count == 1) {
      run.srcStride = 0;
      run.dstStride = 0;
    }
    lane.push_back(run);
    return;
  }
}

/// Run-wise form of the element-wise emitRecv greedy.
void appendRecvRun(std::vector<RecvRun>& lane, RecvRun run) {
  while (run.count > 0) {
    if (!lane.empty()) {
      RecvRun& tail = lane.back();
      if (tail.srcOwner == run.srcOwner && run.lin == tail.lin + tail.count) {
        if (tail.count == 1) {
          tail.dstStride = run.dstOff - tail.dstOff;
          ++tail.count;
          ++run.lin;
          run.dstOff += run.dstStride;
          --run.count;
          continue;
        }
        if (run.dstOff == tail.dstOff + tail.count * tail.dstStride) {
          if (run.count == 1 || run.dstStride == tail.dstStride) {
            tail.count += run.count;
            return;
          }
          ++tail.count;
          ++run.lin;
          run.dstOff += run.dstStride;
          --run.count;
          continue;
        }
      }
    }
    if (run.count == 1) run.dstStride = 0;
    lane.push_back(run);
    return;
  }
}

/// Routes a processor's owned runs into per-chunk LinRun streams, splitting
/// runs at chunk boundaries (runs never cross chunks on the wire).
std::vector<std::vector<LinRun>> routeRunsToChunks(
    const std::vector<LinRun>& owned, Index chunk, int nChunks) {
  std::vector<std::vector<LinRun>> to(static_cast<size_t>(nChunks));
  for (LinRun run : owned) {
    while (run.count > 0) {
      const Index c = run.lin / chunk;
      const Index take = std::min(run.count, (c + 1) * chunk - run.lin);
      appendLinRun(to[static_cast<size_t>(c)],
                   LinRun{run.lin, run.off, take, run.offStride});
      run.lin += take;
      run.off += take * run.offStride;
      run.count -= take;
    }
  }
  return to;
}

/// Element-wise variant of routeRunsToChunks, used by the reference
/// pipeline; produces identical streams for identical element sequences.
std::vector<std::vector<LinRun>> routeToChunks(const std::vector<LinLoc>& owned,
                                               Index chunk, int nChunks) {
  std::vector<std::vector<LinRun>> to(static_cast<size_t>(nChunks));
  for (const LinLoc& ll : owned) {
    appendLinElement(to[static_cast<size_t>(ll.lin / chunk)], ll.lin,
                     ll.offset);
  }
  return to;
}

// ---------------------------------------------------------------------------
// Ownership tables.
//
// ChunkTable is the run-native form: a sorted interval table of
// (positions, owner, offsets) runs covering the chunk exactly, filled
// straight from LinRun streams without per-element expansion — O(runs)
// memory.  ChunkInfo is the element-wise reference form kept behind
// testing::buildElementwiseForTest — O(elements) memory.
// ---------------------------------------------------------------------------

/// One ownership run of a chunk: positions [lin, lin+count) owned by
/// `owner` at offsets off + k*offStride.
struct OwnedRun {
  Index lin;
  Index off;
  Index count;
  Index offStride;
  int owner;
};

struct ChunkTable {
  Index lo = 0;
  Index size = 0;
  std::vector<OwnedRun> runs;  // sorted by lin, covering [lo, lo+size)

  ChunkTable(Index lo_, Index size_) : lo(lo_), size(size_) {}

  /// Streaming fill for locally enumerated chunks: runs must arrive in
  /// linearization order (the enumerateRangeRuns contract).
  void append(Index lin, int owner, Index off, Index count, Index offStride,
              const char* side) {
    const Index expected = runs.empty() ? lo : runs.back().lin + runs.back().count;
    MC_REQUIRE(lin >= expected, "%s linearization visits position %lld twice",
               side, static_cast<long long>(lin));
    MC_REQUIRE(lin >= lo && lin + count <= lo + size,
               "%s element at position %lld routed to the wrong chunk", side,
               static_cast<long long>(lin));
    runs.push_back(OwnedRun{lin, off, count, offStride, owner});
  }

  /// Fill from per-sender wire streams.  Every sender's stream is already
  /// sorted by position, so a k-way merge over per-sender cursors rebuilds
  /// the interval table without a global sort.  Exhausted streams are
  /// dropped from the cursor set, so the scan stays tight.
  void fillFromRows(const std::vector<std::vector<LinRun>>& rows,
                    const char* side) {
    struct Cursor {
      const LinRun* p;
      const LinRun* end;
      Index lin;  // == p->lin, cached so the min-scan stays in this array
      int sender;
    };
    std::vector<Cursor> cur;
    size_t total = 0;
    cur.reserve(rows.size());
    for (size_t sender = 0; sender < rows.size(); ++sender) {
      total += rows[sender].size();
      if (!rows[sender].empty()) {
        cur.push_back(Cursor{rows[sender].data(),
                             rows[sender].data() + rows[sender].size(),
                             rows[sender].front().lin,
                             static_cast<int>(sender)});
      }
    }
    runs.reserve(total);
    Index pos = lo;
    while (!cur.empty()) {
      size_t best = 0;
      for (size_t k = 1; k < cur.size(); ++k) {
        if (cur[k].lin < cur[best].lin) best = k;
      }
      const LinRun& run = *cur[best].p;
      MC_REQUIRE(run.lin >= lo && run.lin + run.count <= lo + size,
                 "%s element at position %lld routed to the wrong chunk",
                 side, static_cast<long long>(run.lin));
      MC_REQUIRE(run.lin >= pos, "%s linearization visits position %lld twice",
                 side, static_cast<long long>(run.lin));
      pos = run.lin + run.count;
      runs.push_back(OwnedRun{run.lin, run.off, run.count, run.offStride,
                              cur[best].sender});
      if (++cur[best].p == cur[best].end) {
        cur[best] = cur.back();
        cur.pop_back();
      } else {
        cur[best].lin = cur[best].p->lin;
      }
    }
  }

  /// Verifies the table covers the chunk with no gaps.
  void checkComplete(const char* side) const {
    Index pos = lo;
    for (const OwnedRun& run : runs) {
      MC_REQUIRE(run.lin == pos, "%s linearization skips position %lld", side,
                 static_cast<long long>(pos));
      pos = run.lin + run.count;
    }
    MC_REQUIRE(pos == lo + size, "%s linearization skips position %lld", side,
               static_cast<long long>(pos));
  }

  std::size_t tableBytes() const { return runs.size() * sizeof(OwnedRun); }
};

/// Two-pointer interval join over two ownership tables covering the same
/// position range: fn(srcRun, dstRun, pos, count) is called once per
/// maximal segment on which both owners (and both offset progressions) are
/// fixed — runs are split exactly at each other's boundaries, never
/// expanded.  O(|src runs| + |dst runs|).
template <typename F>
void joinTables(const ChunkTable& src, const ChunkTable& dst, F&& fn) {
  size_t i = 0;
  size_t j = 0;
  Index pos = src.lo;
  const Index end = src.lo + src.size;
  while (pos < end) {
    const OwnedRun& s = src.runs[i];
    const OwnedRun& d = dst.runs[j];
    const Index sEnd = s.lin + s.count;
    const Index dEnd = d.lin + d.count;
    const Index stop = std::min(sEnd, dEnd);
    fn(s, d, pos, stop - pos);
    pos = stop;
    if (stop == sEnd) ++i;
    if (stop == dEnd) ++j;
  }
}

/// Offset of position `pos` within run `r`.
Index offAt(const OwnedRun& r, Index pos) {
  return r.off + (pos - r.lin) * r.offStride;
}

/// One chunk's joined ownership table — the element-wise reference form.
struct ChunkInfo {
  Index lo = 0;
  Index size = 0;
  // at[k] = {owner, offset} for position lo + k; owner -1 = unset.
  std::vector<int> owner;
  std::vector<Index> offset;

  explicit ChunkInfo(Index lo_, Index size_)
      : lo(lo_),
        size(size_),
        owner(static_cast<size_t>(size_), -1),
        offset(static_cast<size_t>(size_), 0) {}

  void put(Index lin, int who, Index off, const char* side) {
    MC_REQUIRE(lin >= lo && lin < lo + size,
               "%s element at position %lld routed to the wrong chunk", side,
               static_cast<long long>(lin));
    const auto k = static_cast<size_t>(lin - lo);
    MC_REQUIRE(owner[k] == -1, "%s linearization visits position %lld twice",
               side, static_cast<long long>(lin));
    owner[k] = who;
    offset[k] = off;
  }

  void fillFromRuns(const std::vector<std::vector<LinRun>>& rows,
                    const char* side) {
    for (size_t sender = 0; sender < rows.size(); ++sender) {
      for (const LinRun& run : rows[sender]) {
        for (Index k = 0; k < run.count; ++k) {
          put(run.lin + k, static_cast<int>(sender),
              run.off + k * run.offStride, side);
        }
      }
    }
  }

  void checkComplete(const char* side) const {
    for (Index k = 0; k < size; ++k) {
      MC_REQUIRE(owner[static_cast<size_t>(k)] != -1,
                 "%s linearization skips position %lld", side,
                 static_cast<long long>(lo + k));
    }
  }

  std::size_t tableBytes() const {
    return static_cast<size_t>(size) * (sizeof(int) + sizeof(Index));
  }
};

/// Extends or starts a SendRun in `lane` (element-wise reference emitter).
void emitSend(std::vector<SendRun>& lane, Index lin, Index srcOff,
              Index dstOff, Index dstOwner) {
  if (!lane.empty()) {
    SendRun& run = lane.back();
    if (run.dstOwner == dstOwner && lin == run.lin + run.count) {
      if (run.count == 1) {
        run.srcStride = srcOff - run.srcOff;
        run.dstStride = dstOff - run.dstOff;
        ++run.count;
        return;
      }
      if (srcOff == run.srcOff + run.count * run.srcStride &&
          dstOff == run.dstOff + run.count * run.dstStride) {
        ++run.count;
        return;
      }
    }
  }
  lane.push_back(SendRun{lin, srcOff, dstOff, 1, 0, 0, dstOwner});
}

/// Extends or starts a RecvRun in `lane` (element-wise reference emitter).
void emitRecv(std::vector<RecvRun>& lane, Index lin, Index dstOff,
              Index srcOwner) {
  if (!lane.empty()) {
    RecvRun& run = lane.back();
    if (run.srcOwner == srcOwner && lin == run.lin + run.count) {
      if (run.count == 1) {
        run.dstStride = dstOff - run.dstOff;
        ++run.count;
        return;
      }
      if (dstOff == run.dstOff + run.count * run.dstStride) {
        ++run.count;
        return;
      }
    }
  }
  lane.push_back(RecvRun{lin, dstOff, 1, 0, srcOwner});
}

// ---------------------------------------------------------------------------
// Plan assembly.
//
// The run-native assemblers turn SendRun/RecvRun rows into runs-first
// OffsetPlans without ever expanding an offset list; the element-wise
// reference assemblers expand into per-element offsets (the historical
// form).  Rows arrive chunk-ordered, so per-peer lanes stay in
// linearization order either way.
// ---------------------------------------------------------------------------

void assembleSendsRuns(const std::vector<std::vector<SendRun>>& rows, int me,
                       bool allowLocal, sched::Schedule& plan,
                       std::vector<SendSeg>* segs = nullptr) {
  std::vector<std::vector<OffsetRun>> byPeer;
  for (const auto& row : rows) {
    for (const SendRun& run : row) {
      // Rows arrive chunk-ordered and chunk-internally sorted, so the
      // stream is globally lin-sorted; re-appending re-coalesces across
      // chunk seams into the canonical provenance cut.
      if (segs) appendSendRun(*segs, run);
      if (allowLocal && run.dstOwner == me) {
        sched::appendLocalRun(plan.localRuns,
                              LocalRun{run.srcOff, run.dstOff, run.count,
                                       run.srcStride, run.dstStride});
        continue;
      }
      if (byPeer.size() <= static_cast<size_t>(run.dstOwner)) {
        byPeer.resize(static_cast<size_t>(run.dstOwner) + 1);
      }
      sched::appendOffsetRun(byPeer[static_cast<size_t>(run.dstOwner)],
                             OffsetRun{run.srcOff, run.count, run.srcStride});
    }
  }
  for (size_t p = 0; p < byPeer.size(); ++p) {
    if (byPeer[p].empty()) continue;
    plan.sends.push_back(
        sched::OffsetPlan{static_cast<int>(p), {}, std::move(byPeer[p])});
  }
}

void assembleRecvsRuns(const std::vector<std::vector<RecvRun>>& rows,
                       sched::Schedule& plan,
                       std::vector<RecvSeg>* segs = nullptr) {
  std::vector<std::vector<OffsetRun>> byPeer;
  for (const auto& row : rows) {
    for (const RecvRun& run : row) {
      if (segs) appendRecvRun(*segs, run);
      if (byPeer.size() <= static_cast<size_t>(run.srcOwner)) {
        byPeer.resize(static_cast<size_t>(run.srcOwner) + 1);
      }
      sched::appendOffsetRun(byPeer[static_cast<size_t>(run.srcOwner)],
                             OffsetRun{run.dstOff, run.count, run.dstStride});
    }
  }
  for (size_t p = 0; p < byPeer.size(); ++p) {
    if (byPeer[p].empty()) continue;
    plan.recvs.push_back(
        sched::OffsetPlan{static_cast<int>(p), {}, std::move(byPeer[p])});
  }
}

void assembleSendsElementwise(const std::vector<std::vector<SendRun>>& rows,
                              int me, bool allowLocal, sched::Schedule& plan,
                              std::vector<SendSeg>* segs = nullptr) {
  std::vector<std::vector<Index>> byPeer;
  for (const auto& row : rows) {
    for (const SendRun& run : row) {
      if (segs) appendSendRun(*segs, run);
      if (allowLocal && run.dstOwner == me) {
        for (Index k = 0; k < run.count; ++k) {
          plan.localPairs.emplace_back(run.srcOff + k * run.srcStride,
                                       run.dstOff + k * run.dstStride);
        }
        continue;
      }
      if (byPeer.size() <= static_cast<size_t>(run.dstOwner)) {
        byPeer.resize(static_cast<size_t>(run.dstOwner) + 1);
      }
      auto& offsets = byPeer[static_cast<size_t>(run.dstOwner)];
      for (Index k = 0; k < run.count; ++k) {
        offsets.push_back(run.srcOff + k * run.srcStride);
      }
    }
  }
  for (size_t p = 0; p < byPeer.size(); ++p) {
    if (byPeer[p].empty()) continue;
    plan.sends.push_back(
        sched::OffsetPlan{static_cast<int>(p), std::move(byPeer[p]), {}});
  }
}

void assembleRecvsElementwise(const std::vector<std::vector<RecvRun>>& rows,
                              sched::Schedule& plan,
                              std::vector<RecvSeg>* segs = nullptr) {
  std::vector<std::vector<Index>> byPeer;
  for (const auto& row : rows) {
    for (const RecvRun& run : row) {
      if (segs) appendRecvRun(*segs, run);
      if (byPeer.size() <= static_cast<size_t>(run.srcOwner)) {
        byPeer.resize(static_cast<size_t>(run.srcOwner) + 1);
      }
      auto& offsets = byPeer[static_cast<size_t>(run.srcOwner)];
      for (Index k = 0; k < run.count; ++k) {
        offsets.push_back(run.dstOff + k * run.dstStride);
      }
    }
  }
  for (size_t p = 0; p < byPeer.size(); ++p) {
    if (byPeer[p].empty()) continue;
    plan.recvs.push_back(
        sched::OffsetPlan{static_cast<int>(p), std::move(byPeer[p]), {}});
  }
}

// ---------------------------------------------------------------------------
// Chunk ownership acquisition.
// ---------------------------------------------------------------------------

/// Obtains one side's ownership info for this processor's chunk as a run
/// table.  When the descriptor is locally enumerable the chunk owner
/// computes it directly (no communication); otherwise the side performs the
/// collective owned-runs enumeration and routes the results to chunk owners
/// (Chaos with a distributed table — the expensive path the paper
/// measures).  Must be called by every processor of the program in either
/// case.
ChunkTable chunkTableIntra(transport::Comm& comm, const LibraryAdapter& lib,
                           const DistObject& obj, const SetOfRegions& set,
                           Index n, Index chunk, const char* side) {
  const int me = comm.rank();
  const Index lo = chunk * me;
  const Index size = std::max<Index>(0, std::min(n, lo + chunk) - lo);
  ChunkTable table(lo, size);
  if (lib.supportsLocalEnumeration(obj)) {
    comm.compute([&] {
      lib.enumerateRangeRuns(obj, set, lo, lo + size,
                             [&](Index lin, int owner, Index off, Index count,
                                 Index offStride) {
                               table.append(lin, owner, off, count, offStride,
                                            side);
                             });
    });
  } else {
    // Element routing coalesces into the identical LinRun wire stream that
    // enumerateOwnedRuns + routeRunsToChunks would produce (the same greedy
    // rule), in one pass instead of two — on fully irregular data the
    // coalesce passes are the dominant build cost.
    const std::vector<LinLoc> owned = lib.enumerateOwned(obj, set, comm);
    auto rows = comm.alltoall(comm.computeValue(
        [&] { return routeToChunks(owned, chunk, comm.size()); }));
    comm.compute([&] { table.fillFromRows(rows, side); });
  }
  comm.compute([&] { table.checkComplete(side); });
  g_buildStats.ownershipTableBytes += table.tableBytes();
  return table;
}

/// Element-wise reference form of chunkTableIntra.
ChunkInfo chunkInfoIntra(transport::Comm& comm, const LibraryAdapter& lib,
                         const DistObject& obj, const SetOfRegions& set,
                         Index n, Index chunk, const char* side) {
  const int me = comm.rank();
  const Index lo = chunk * me;
  const Index size = std::max<Index>(0, std::min(n, lo + chunk) - lo);
  ChunkInfo info(lo, size);
  if (lib.supportsLocalEnumeration(obj)) {
    comm.compute([&] {
      lib.enumerateRange(obj, set, lo, lo + size,
                         [&](Index lin, int owner, Index off) {
                           info.put(lin, owner, off, side);
                         });
    });
  } else {
    const std::vector<LinLoc> owned = lib.enumerateOwned(obj, set, comm);
    auto rows = comm.alltoall(comm.computeValue(
        [&] { return routeToChunks(owned, chunk, comm.size()); }));
    comm.compute([&] { info.fillFromRuns(rows, side); });
  }
  comm.compute([&] { info.checkComplete(side); });
  g_buildStats.ownershipTableBytes += info.tableBytes();
  return info;
}

// ---------------------------------------------------------------------------
// Intra-program builds
// ---------------------------------------------------------------------------

McSchedule buildIntraCooperation(transport::Comm& comm,
                                 const LibraryAdapter& srcLib,
                                 const DistObject& srcObj,
                                 const SetOfRegions& srcSet,
                                 const LibraryAdapter& dstLib,
                                 const DistObject& dstObj,
                                 const SetOfRegions& dstSet, Index n) {
  McSchedule out;
  out.numElements = n;
  out.plan.bufferLocalCopies = false;
  const int np = comm.size();
  const int me = comm.rank();
  const Index chunk = (n + np - 1) / np;

  const ChunkTable src =
      chunkTableIntra(comm, srcLib, srcObj, srcSet, n, chunk, "source");
  const ChunkTable dst =
      chunkTableIntra(comm, dstLib, dstObj, dstSet, n, chunk, "destination");

  // Join and emit marching orders for the processors that own the data —
  // whole segments at a time, split only where a source or destination run
  // boundary falls.
  std::vector<std::vector<SendRun>> sendTo(static_cast<size_t>(np));
  std::vector<std::vector<RecvRun>> recvTo(static_cast<size_t>(np));
  comm.compute([&] {
    joinTables(src, dst, [&](const OwnedRun& s, const OwnedRun& d, Index pos,
                             Index count) {
      const Index srcOff = offAt(s, pos);
      const Index dstOff = offAt(d, pos);
      if (count == 1) {
        // Degenerate segment (fully irregular data): the single-element
        // greedy appends produce the same lanes for less bookkeeping.
        emitSend(sendTo[static_cast<size_t>(s.owner)], pos, srcOff, dstOff,
                 d.owner);
        if (d.owner != s.owner) {
          emitRecv(recvTo[static_cast<size_t>(d.owner)], pos, dstOff, s.owner);
        }
        return;
      }
      appendSendRun(sendTo[static_cast<size_t>(s.owner)],
                    SendRun{pos, srcOff, dstOff, count, s.offStride,
                            d.offStride, static_cast<Index>(d.owner)});
      if (d.owner != s.owner) {
        appendRecvRun(recvTo[static_cast<size_t>(d.owner)],
                      RecvRun{pos, dstOff, count, d.offStride,
                              static_cast<Index>(s.owner)});
      }
    });
  });
  auto mySends = comm.alltoall(sendTo);
  auto myRecvs = comm.alltoall(recvTo);
  comm.compute([&] {
    assembleSendsRuns(mySends, me, /*allowLocal=*/true, out.plan,
                      &out.sendSegs);
    assembleRecvsRuns(myRecvs, out.plan, &out.recvSegs);
  });
  out.hasProvenance = true;
  return out;
}

McSchedule buildIntraCooperationElementwise(
    transport::Comm& comm, const LibraryAdapter& srcLib,
    const DistObject& srcObj, const SetOfRegions& srcSet,
    const LibraryAdapter& dstLib, const DistObject& dstObj,
    const SetOfRegions& dstSet, Index n) {
  McSchedule out;
  out.numElements = n;
  out.plan.bufferLocalCopies = false;
  const int np = comm.size();
  const int me = comm.rank();
  const Index chunk = (n + np - 1) / np;

  const ChunkInfo src =
      chunkInfoIntra(comm, srcLib, srcObj, srcSet, n, chunk, "source");
  const ChunkInfo dst =
      chunkInfoIntra(comm, dstLib, dstObj, dstSet, n, chunk, "destination");

  std::vector<std::vector<SendRun>> sendTo(static_cast<size_t>(np));
  std::vector<std::vector<RecvRun>> recvTo(static_cast<size_t>(np));
  comm.compute([&] {
    for (Index k = 0; k < src.size; ++k) {
      const auto kk = static_cast<size_t>(k);
      const int sOwner = src.owner[kk];
      const int dOwner = dst.owner[kk];
      emitSend(sendTo[static_cast<size_t>(sOwner)], src.lo + k, src.offset[kk],
               dst.offset[kk], dOwner);
      if (dOwner != sOwner) {
        emitRecv(recvTo[static_cast<size_t>(dOwner)], src.lo + k,
                 dst.offset[kk], sOwner);
      }
    }
  });
  auto mySends = comm.alltoall(sendTo);
  auto myRecvs = comm.alltoall(recvTo);
  comm.compute([&] {
    assembleSendsElementwise(mySends, me, /*allowLocal=*/true, out.plan,
                             &out.sendSegs);
    assembleRecvsElementwise(myRecvs, out.plan, &out.recvSegs);
  });
  out.hasProvenance = true;
  return out;
}

McSchedule buildIntraDuplication(transport::Comm& comm,
                                 const LibraryAdapter& srcLib,
                                 const DistObject& srcObj,
                                 const SetOfRegions& srcSet,
                                 const LibraryAdapter& dstLib,
                                 const DistObject& dstObj,
                                 const SetOfRegions& dstSet, Index n) {
  MC_REQUIRE(srcLib.supportsLocalEnumeration(srcObj) &&
                 dstLib.supportsLocalEnumeration(dstObj),
             "the duplication method requires locally enumerable "
             "descriptors on both sides; use cooperation instead");
  McSchedule out;
  out.numElements = n;
  out.plan.bufferLocalCopies = false;
  // Duplication pays the library dereference machinery twice over the set
  // (paper Section 5.1), the work split across processors.
  comm.advance(2.0 *
               (srcLib.modeledElementDereferenceCost(srcObj) +
                dstLib.modeledElementDereferenceCost(dstObj)) *
               static_cast<double>(n) / comm.size());
  const int me = comm.rank();
  comm.compute([&] {
    // Two full ownership passes per processor — the 2x dereference cost the
    // paper attributes to duplication — with no communication, but as run
    // streams: the table stays O(runs), never O(elements).
    ChunkTable src(0, n);
    ChunkTable dst(0, n);
    srcLib.enumerateRangeRuns(
        srcObj, srcSet, 0, n,
        [&](Index lin, int owner, Index off, Index count, Index offStride) {
          src.append(lin, owner, off, count, offStride, "source");
        });
    dstLib.enumerateRangeRuns(
        dstObj, dstSet, 0, n,
        [&](Index lin, int owner, Index off, Index count, Index offStride) {
          dst.append(lin, owner, off, count, offStride, "destination");
        });
    src.checkComplete("source");
    dst.checkComplete("destination");
    g_buildStats.ownershipTableBytes += src.tableBytes() + dst.tableBytes();
    std::vector<std::vector<OffsetRun>> sendBy;
    std::vector<std::vector<OffsetRun>> recvBy;
    joinTables(src, dst, [&](const OwnedRun& s, const OwnedRun& d, Index pos,
                             Index count) {
      if (s.owner == me) {
        appendSendRun(out.sendSegs,
                      SendSeg{pos, offAt(s, pos), offAt(d, pos), count,
                              s.offStride, d.offStride,
                              static_cast<Index>(d.owner)});
      } else if (d.owner == me) {
        appendRecvRun(out.recvSegs,
                      RecvSeg{pos, offAt(d, pos), count, d.offStride,
                              static_cast<Index>(s.owner)});
      }
      if (s.owner == me && d.owner == me) {
        sched::appendLocalRun(out.plan.localRuns,
                              LocalRun{offAt(s, pos), offAt(d, pos), count,
                                       s.offStride, d.offStride});
      } else if (s.owner == me) {
        if (sendBy.size() <= static_cast<size_t>(d.owner)) {
          sendBy.resize(static_cast<size_t>(d.owner) + 1);
        }
        sched::appendOffsetRun(sendBy[static_cast<size_t>(d.owner)],
                               OffsetRun{offAt(s, pos), count, s.offStride});
      } else if (d.owner == me) {
        if (recvBy.size() <= static_cast<size_t>(s.owner)) {
          recvBy.resize(static_cast<size_t>(s.owner) + 1);
        }
        sched::appendOffsetRun(recvBy[static_cast<size_t>(s.owner)],
                               OffsetRun{offAt(d, pos), count, d.offStride});
      }
    });
    for (size_t p = 0; p < sendBy.size(); ++p) {
      if (!sendBy[p].empty()) {
        out.plan.sends.push_back(
            sched::OffsetPlan{static_cast<int>(p), {}, std::move(sendBy[p])});
      }
    }
    for (size_t p = 0; p < recvBy.size(); ++p) {
      if (!recvBy[p].empty()) {
        out.plan.recvs.push_back(
            sched::OffsetPlan{static_cast<int>(p), {}, std::move(recvBy[p])});
      }
    }
  });
  out.hasProvenance = true;
  return out;
}

McSchedule buildIntraDuplicationElementwise(
    transport::Comm& comm, const LibraryAdapter& srcLib,
    const DistObject& srcObj, const SetOfRegions& srcSet,
    const LibraryAdapter& dstLib, const DistObject& dstObj,
    const SetOfRegions& dstSet, Index n) {
  MC_REQUIRE(srcLib.supportsLocalEnumeration(srcObj) &&
                 dstLib.supportsLocalEnumeration(dstObj),
             "the duplication method requires locally enumerable "
             "descriptors on both sides; use cooperation instead");
  McSchedule out;
  out.numElements = n;
  out.plan.bufferLocalCopies = false;
  comm.advance(2.0 *
               (srcLib.modeledElementDereferenceCost(srcObj) +
                dstLib.modeledElementDereferenceCost(dstObj)) *
               static_cast<double>(n) / comm.size());
  const int me = comm.rank();
  comm.compute([&] {
    std::vector<int> srcOwner(static_cast<size_t>(n));
    std::vector<Index> srcOff(static_cast<size_t>(n));
    std::vector<int> dstOwner(static_cast<size_t>(n));
    std::vector<Index> dstOff(static_cast<size_t>(n));
    g_buildStats.ownershipTableBytes +=
        2 * static_cast<size_t>(n) * (sizeof(int) + sizeof(Index));
    srcLib.enumerateAll(srcObj, srcSet, [&](Index lin, int owner, Index off) {
      srcOwner[static_cast<size_t>(lin)] = owner;
      srcOff[static_cast<size_t>(lin)] = off;
    });
    dstLib.enumerateAll(dstObj, dstSet, [&](Index lin, int owner, Index off) {
      dstOwner[static_cast<size_t>(lin)] = owner;
      dstOff[static_cast<size_t>(lin)] = off;
    });
    std::vector<std::vector<Index>> sendBy;
    std::vector<std::vector<Index>> recvBy;
    for (Index lin = 0; lin < n; ++lin) {
      const auto ll = static_cast<size_t>(lin);
      const int s = srcOwner[ll];
      const int d = dstOwner[ll];
      if (s == me) {
        emitSend(out.sendSegs, lin, srcOff[ll], dstOff[ll],
                 static_cast<Index>(d));
      } else if (d == me) {
        emitRecv(out.recvSegs, lin, dstOff[ll], static_cast<Index>(s));
      }
      if (s == me && d == me) {
        out.plan.localPairs.emplace_back(srcOff[ll], dstOff[ll]);
      } else if (s == me) {
        if (sendBy.size() <= static_cast<size_t>(d)) {
          sendBy.resize(static_cast<size_t>(d) + 1);
        }
        sendBy[static_cast<size_t>(d)].push_back(srcOff[ll]);
      } else if (d == me) {
        if (recvBy.size() <= static_cast<size_t>(s)) {
          recvBy.resize(static_cast<size_t>(s) + 1);
        }
        recvBy[static_cast<size_t>(s)].push_back(dstOff[ll]);
      }
    }
    for (size_t p = 0; p < sendBy.size(); ++p) {
      if (!sendBy[p].empty()) {
        out.plan.sends.push_back(
            sched::OffsetPlan{static_cast<int>(p), std::move(sendBy[p]), {}});
      }
    }
    for (size_t p = 0; p < recvBy.size(); ++p) {
      if (!recvBy[p].empty()) {
        out.plan.recvs.push_back(
            sched::OffsetPlan{static_cast<int>(p), std::move(recvBy[p]), {}});
      }
    }
  });
  out.hasProvenance = true;
  return out;
}

// ---------------------------------------------------------------------------
// Inter-program builds
// ---------------------------------------------------------------------------

/// Wire bundle for the duplication method: library name + descriptor + set.
std::vector<std::byte> packRemoteBundle(const LibraryAdapter& lib,
                                        const DistObject& obj,
                                        const SetOfRegions& set,
                                        transport::Comm& comm) {
  const std::string name = lib.name();
  const std::vector<std::byte> desc = lib.serializeDesc(obj, comm);
  const std::vector<std::byte> setBytes = serializeSet(set);
  std::vector<std::byte> out;
  auto putU64 = [&out](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  };
  putU64(name.size());
  const auto* np = reinterpret_cast<const std::byte*>(name.data());
  out.insert(out.end(), np, np + name.size());
  putU64(desc.size());
  out.insert(out.end(), desc.begin(), desc.end());
  putU64(setBytes.size());
  out.insert(out.end(), setBytes.begin(), setBytes.end());
  return out;
}

std::pair<DistObject, SetOfRegions> unpackRemoteBundle(
    std::span<const std::byte> bytes) {
  size_t pos = 0;
  auto getU64 = [&]() {
    MC_REQUIRE(pos + sizeof(std::uint64_t) <= bytes.size(),
               "truncated remote bundle");
    std::uint64_t v = 0;
    std::memcpy(&v, bytes.data() + pos, sizeof(v));
    pos += sizeof(v);
    return v;
  };
  const std::uint64_t nameLen = getU64();
  MC_REQUIRE(pos + nameLen <= bytes.size(), "truncated remote bundle");
  std::string name(reinterpret_cast<const char*>(bytes.data() + pos), nameLen);
  pos += nameLen;
  const std::uint64_t descLen = getU64();
  MC_REQUIRE(pos + descLen <= bytes.size(), "truncated remote bundle");
  registerBuiltinAdapters();
  const LibraryAdapter& lib = Registry::instance().get(name);
  DistObject obj = lib.deserializeDesc(bytes.subspan(pos, descLen));
  pos += descLen;
  const std::uint64_t setLen = getU64();
  MC_REQUIRE(pos + setLen == bytes.size(), "truncated remote bundle");
  SetOfRegions set = deserializeSet(bytes.subspan(pos, setLen));
  return {std::move(obj), std::move(set)};
}

/// Exchanges a byte blob with the remote program (rank 0 <-> rank 0, then
/// broadcast within each program).  Collective over both programs.
std::vector<std::byte> exchangeBlob(transport::Comm& comm, int remoteProgram,
                                    const std::vector<std::byte>& mine) {
  const int tag = comm.nextInterTag(remoteProgram);
  std::vector<std::byte> theirs;
  if (comm.rank() == 0) {
    comm.sendBytesTo(remoteProgram, 0, tag, mine);
    theirs = comm.recvMsgFrom(remoteProgram, 0, tag).payload;
  }
  comm.bcastBytes(theirs, 0);
  return theirs;
}

/// Verifies both sides agree on the element count.
void handshakeCount(transport::Comm& comm, int remoteProgram, Index n) {
  const int tag = comm.nextInterTag(remoteProgram);
  if (comm.rank() == 0) {
    comm.sendValueTo(remoteProgram, 0, tag, n);
    const Index other = comm.recvValueFrom<Index>(remoteProgram, 0, tag);
    MC_REQUIRE(other == n,
               "source and destination sets differ in size (%lld vs %lld)",
               static_cast<long long>(n), static_cast<long long>(other));
  }
  comm.barrier();  // everyone learns that the check passed (or the world died)
}

McSchedule buildInterCooperationSend(transport::Comm& comm,
                                     const LibraryAdapter& srcLib,
                                     const DistObject& srcObj,
                                     const SetOfRegions& srcSet,
                                     int remoteProgram, bool elementwise) {
  McSchedule out;
  out.remoteProgram = remoteProgram;
  out.isSender = true;
  out.plan.bufferLocalCopies = false;
  const Index n = srcSet.numElements();
  out.numElements = n;
  handshakeCount(comm, remoteProgram, n);

  // Ship my ownership info to the destination-side chunk owners (the
  // destination program cannot see my descriptor, so this shipping always
  // happens — compactly, thanks to the run encoding).
  const int pd = comm.programInfo(remoteProgram).nprocs;
  const Index chunk = (n + pd - 1) / pd;
  std::vector<std::vector<LinRun>> srcInfoTo;
  if (elementwise) {
    const std::vector<LinLoc> srcOwned =
        srcLib.enumerateOwned(srcObj, srcSet, comm);
    srcInfoTo =
        comm.computeValue([&] { return routeToChunks(srcOwned, chunk, pd); });
  } else {
    const std::vector<LinRun> srcOwned =
        srcLib.enumerateOwnedRuns(srcObj, srcSet, comm);
    srcInfoTo = comm.computeValue(
        [&] { return routeRunsToChunks(srcOwned, chunk, pd); });
  }
  (void)interAlltoall(comm, remoteProgram, srcInfoTo);

  // Receive my marching orders back.
  const std::vector<std::vector<SendRun>> empty(static_cast<size_t>(pd));
  auto mySends = interAlltoall(comm, remoteProgram, empty);
  comm.compute([&] {
    if (elementwise) {
      assembleSendsElementwise(mySends, comm.rank(), /*allowLocal=*/false,
                               out.plan);
    } else {
      assembleSendsRuns(mySends, comm.rank(), /*allowLocal=*/false, out.plan);
    }
  });
  return out;
}

McSchedule buildInterCooperationRecv(transport::Comm& comm,
                                     const LibraryAdapter& dstLib,
                                     const DistObject& dstObj,
                                     const SetOfRegions& dstSet,
                                     int remoteProgram) {
  McSchedule out;
  out.remoteProgram = remoteProgram;
  out.isSender = false;
  out.plan.bufferLocalCopies = false;
  const Index n = dstSet.numElements();
  out.numElements = n;
  handshakeCount(comm, remoteProgram, n);

  const int me = comm.rank();
  const int np = comm.size();  // destination program owns the chunks
  const int ps = comm.programInfo(remoteProgram).nprocs;
  const Index chunk = (n + np - 1) / np;

  // Source ownership info arrives from the remote program.
  const std::vector<std::vector<LinRun>> emptyInfo(static_cast<size_t>(ps));
  auto srcRows = interAlltoall(comm, remoteProgram, emptyInfo);
  const Index lo = chunk * me;
  const Index size = std::max<Index>(0, std::min(n, lo + chunk) - lo);
  ChunkTable src(lo, size);
  comm.compute([&] {
    src.fillFromRows(srcRows, "source");
    src.checkComplete("source");
  });
  g_buildStats.ownershipTableBytes += src.tableBytes();
  // Destination ownership info for my chunk.
  const ChunkTable dst =
      chunkTableIntra(comm, dstLib, dstObj, dstSet, n, chunk, "destination");

  // Join; ship send plans to the remote program, recv plans to my own.
  // Cross-program, so every pairing yields a send and a recv record (the
  // rank spaces of the two programs are distinct).
  std::vector<std::vector<SendRun>> sendTo(static_cast<size_t>(ps));
  std::vector<std::vector<RecvRun>> recvTo(static_cast<size_t>(np));
  comm.compute([&] {
    joinTables(src, dst, [&](const OwnedRun& s, const OwnedRun& d, Index pos,
                             Index count) {
      const Index srcOff = offAt(s, pos);
      const Index dstOff = offAt(d, pos);
      appendSendRun(sendTo[static_cast<size_t>(s.owner)],
                    SendRun{pos, srcOff, dstOff, count, s.offStride,
                            d.offStride, static_cast<Index>(d.owner)});
      appendRecvRun(recvTo[static_cast<size_t>(d.owner)],
                    RecvRun{pos, dstOff, count, d.offStride,
                            static_cast<Index>(s.owner)});
    });
  });
  (void)interAlltoall(comm, remoteProgram, sendTo);
  auto myRecvs = comm.alltoall(recvTo);
  comm.compute([&] { assembleRecvsRuns(myRecvs, out.plan); });
  return out;
}

McSchedule buildInterCooperationRecvElementwise(transport::Comm& comm,
                                                const LibraryAdapter& dstLib,
                                                const DistObject& dstObj,
                                                const SetOfRegions& dstSet,
                                                int remoteProgram) {
  McSchedule out;
  out.remoteProgram = remoteProgram;
  out.isSender = false;
  out.plan.bufferLocalCopies = false;
  const Index n = dstSet.numElements();
  out.numElements = n;
  handshakeCount(comm, remoteProgram, n);

  const int me = comm.rank();
  const int np = comm.size();
  const int ps = comm.programInfo(remoteProgram).nprocs;
  const Index chunk = (n + np - 1) / np;

  const std::vector<std::vector<LinRun>> emptyInfo(static_cast<size_t>(ps));
  auto srcRows = interAlltoall(comm, remoteProgram, emptyInfo);
  const Index lo = chunk * me;
  const Index size = std::max<Index>(0, std::min(n, lo + chunk) - lo);
  ChunkInfo src(lo, size);
  comm.compute([&] {
    src.fillFromRuns(srcRows, "source");
    src.checkComplete("source");
  });
  g_buildStats.ownershipTableBytes += src.tableBytes();
  const ChunkInfo dst =
      chunkInfoIntra(comm, dstLib, dstObj, dstSet, n, chunk, "destination");

  std::vector<std::vector<SendRun>> sendTo(static_cast<size_t>(ps));
  std::vector<std::vector<RecvRun>> recvTo(static_cast<size_t>(np));
  comm.compute([&] {
    for (Index k = 0; k < size; ++k) {
      const auto kk = static_cast<size_t>(k);
      emitSend(sendTo[static_cast<size_t>(src.owner[kk])], lo + k,
               src.offset[kk], dst.offset[kk], dst.owner[kk]);
      emitRecv(recvTo[static_cast<size_t>(dst.owner[kk])], lo + k,
               dst.offset[kk], src.owner[kk]);
    }
  });
  (void)interAlltoall(comm, remoteProgram, sendTo);
  auto myRecvs = comm.alltoall(recvTo);
  comm.compute([&] { assembleRecvsElementwise(myRecvs, out.plan); });
  return out;
}

McSchedule buildInterDuplication(transport::Comm& comm,
                                 const LibraryAdapter& myLib,
                                 const DistObject& myObj,
                                 const SetOfRegions& mySet, int remoteProgram,
                                 bool isSender, bool elementwise) {
  MC_REQUIRE(myLib.supportsLocalEnumeration(myObj),
             "the duplication method requires locally enumerable "
             "descriptors; use cooperation instead");
  McSchedule out;
  out.remoteProgram = remoteProgram;
  out.isSender = isSender;
  out.plan.bufferLocalCopies = false;
  const Index n = mySet.numElements();
  out.numElements = n;
  handshakeCount(comm, remoteProgram, n);

  // Ship descriptors + sets both ways, then work entirely locally.
  const std::vector<std::byte> mine =
      packRemoteBundle(myLib, myObj, mySet, comm);
  const std::vector<std::byte> theirsBytes =
      exchangeBlob(comm, remoteProgram, mine);
  auto [remoteObj, remoteSet] = unpackRemoteBundle(theirsBytes);
  const LibraryAdapter& remoteLib = adapterFor(remoteObj);
  MC_REQUIRE(remoteSet.numElements() == n,
             "remote set size %lld != local %lld",
             static_cast<long long>(remoteSet.numElements()),
             static_cast<long long>(n));
  comm.advance(2.0 *
               (myLib.modeledElementDereferenceCost(myObj) +
                remoteLib.modeledElementDereferenceCost(remoteObj)) *
               static_cast<double>(n) / comm.size());

  const int me = comm.rank();
  if (!elementwise) {
    comm.compute([&] {
      ChunkTable my(0, n);
      ChunkTable their(0, n);
      myLib.enumerateRangeRuns(
          myObj, mySet, 0, n,
          [&](Index lin, int owner, Index off, Index count, Index offStride) {
            my.append(lin, owner, off, count, offStride, "local");
          });
      remoteLib.enumerateRangeRuns(
          remoteObj, remoteSet, 0, n,
          [&](Index lin, int owner, Index off, Index count, Index offStride) {
            their.append(lin, owner, off, count, offStride, "remote");
          });
      my.checkComplete("local");
      their.checkComplete("remote");
      g_buildStats.ownershipTableBytes += my.tableBytes() + their.tableBytes();
      std::vector<std::vector<OffsetRun>> byPeer;
      joinTables(my, their, [&](const OwnedRun& m, const OwnedRun& t,
                                Index pos, Index count) {
        if (m.owner != me) return;
        if (byPeer.size() <= static_cast<size_t>(t.owner)) {
          byPeer.resize(static_cast<size_t>(t.owner) + 1);
        }
        // Senders pack their own (source) offsets; receivers unpack into
        // their own (destination) offsets.
        sched::appendOffsetRun(byPeer[static_cast<size_t>(t.owner)],
                               OffsetRun{offAt(m, pos), count, m.offStride});
      });
      for (size_t p = 0; p < byPeer.size(); ++p) {
        if (byPeer[p].empty()) continue;
        sched::OffsetPlan plan{static_cast<int>(p), {}, std::move(byPeer[p])};
        if (isSender) {
          out.plan.sends.push_back(std::move(plan));
        } else {
          out.plan.recvs.push_back(std::move(plan));
        }
      }
    });
    return out;
  }
  comm.compute([&] {
    std::vector<int> myOwner(static_cast<size_t>(n));
    std::vector<Index> myOff(static_cast<size_t>(n));
    std::vector<int> theirOwner(static_cast<size_t>(n));
    std::vector<Index> theirOff(static_cast<size_t>(n));
    g_buildStats.ownershipTableBytes +=
        2 * static_cast<size_t>(n) * (sizeof(int) + sizeof(Index));
    myLib.enumerateAll(myObj, mySet, [&](Index lin, int owner, Index off) {
      myOwner[static_cast<size_t>(lin)] = owner;
      myOff[static_cast<size_t>(lin)] = off;
    });
    remoteLib.enumerateAll(remoteObj, remoteSet,
                           [&](Index lin, int owner, Index off) {
                             theirOwner[static_cast<size_t>(lin)] = owner;
                             theirOff[static_cast<size_t>(lin)] = off;
                           });
    std::vector<std::vector<Index>> byPeer;
    for (Index lin = 0; lin < n; ++lin) {
      const auto ll = static_cast<size_t>(lin);
      if (myOwner[ll] != me) continue;
      const int peer = theirOwner[ll];
      if (byPeer.size() <= static_cast<size_t>(peer)) {
        byPeer.resize(static_cast<size_t>(peer) + 1);
      }
      byPeer[static_cast<size_t>(peer)].push_back(myOff[ll]);
      (void)theirOff;
    }
    for (size_t p = 0; p < byPeer.size(); ++p) {
      if (byPeer[p].empty()) continue;
      sched::OffsetPlan plan{static_cast<int>(p), std::move(byPeer[p]), {}};
      if (isSender) {
        out.plan.sends.push_back(std::move(plan));
      } else {
        out.plan.recvs.push_back(std::move(plan));
      }
    }
  });
  return out;
}

// ---------------------------------------------------------------------------
// Schedule patching (incremental delta rebuild).
//
// The provenance streams are the canonical greedy cut of each rank's
// per-lin segment sequence.  Because every append helper merges only
// lin-contiguous records, re-appending any re-cut of the same sequence
// reproduces the stream bit-identically — so subtracting the delta's
// intervals from the old streams, deriving fresh segments for only the
// migrated intervals, and merging by lin yields exactly what a full
// rebuild of the new distributions would have produced: identical
// provenance AND identical plans.
// ---------------------------------------------------------------------------

SendSeg sliceSendSeg(const SendSeg& g, Index lo, Index hi) {
  SendSeg s = g;
  s.lin = lo;
  s.count = hi - lo;
  s.srcOff = g.srcOff + (lo - g.lin) * g.srcStride;
  s.dstOff = g.dstOff + (lo - g.lin) * g.dstStride;
  return s;
}

RecvSeg sliceRecvSeg(const RecvSeg& g, Index lo, Index hi) {
  RecvSeg s = g;
  s.lin = lo;
  s.count = hi - lo;
  s.dstOff = g.dstOff + (lo - g.lin) * g.dstStride;
  return s;
}

/// Emits the sub-segments of `segs` falling outside the delta's migrated
/// intervals (both inputs sorted by lin and disjoint).  Two-pointer
/// subtraction, O(|segs| + |intervals|).
template <typename Seg, typename Slice, typename Emit>
void subtractDelta(const std::vector<Seg>& segs,
                   const std::vector<layout::LinInterval>& iv, Slice slice,
                   Emit emit) {
  size_t j = 0;
  for (const Seg& g : segs) {
    Index pos = g.lin;
    const Index end = g.lin + g.count;
    while (pos < end) {
      while (j < iv.size() && iv[j].hi <= pos) ++j;
      if (j == iv.size() || iv[j].lo >= end) {
        emit(slice(g, pos, end));
        break;
      }
      if (iv[j].lo > pos) emit(slice(g, pos, iv[j].lo));
      pos = std::min(iv[j].hi, end);
    }
  }
}

/// Merges two lin-sorted disjoint seg streams through the canonical greedy
/// appender.
template <typename Seg, typename Append>
void mergeSegStreams(const std::vector<Seg>& a, const std::vector<Seg>& b,
                     std::vector<Seg>& out, Append append) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].lin < b[j].lin)) {
      append(out, a[i++]);
    } else {
      append(out, b[j++]);
    }
  }
}

/// Derives this rank's fresh send/recv segments for every delta interval by
/// local enumeration of both new descriptors over just that interval.
/// Returns the ownership-table bytes materialized.
std::size_t buildFreshSegs(int me, const LibraryAdapter& srcLib,
                           const DistObject& srcObj, const SetOfRegions& srcSet,
                           const LibraryAdapter& dstLib,
                           const DistObject& dstObj, const SetOfRegions& dstSet,
                           const layout::DistDelta& delta, Index n,
                           std::vector<SendSeg>& sendOut,
                           std::vector<RecvSeg>& recvOut) {
  std::size_t tableBytes = 0;
  for (const layout::LinInterval& ivRaw : delta.intervals()) {
    const Index lo = std::max<Index>(0, ivRaw.lo);
    const Index hi = std::min(n, ivRaw.hi);
    if (hi <= lo) continue;
    ChunkTable src(lo, hi - lo);
    ChunkTable dst(lo, hi - lo);
    srcLib.enumerateRangeRuns(
        srcObj, srcSet, lo, hi,
        [&](Index lin, int owner, Index off, Index count, Index offStride) {
          src.append(lin, owner, off, count, offStride, "source");
        });
    dstLib.enumerateRangeRuns(
        dstObj, dstSet, lo, hi,
        [&](Index lin, int owner, Index off, Index count, Index offStride) {
          dst.append(lin, owner, off, count, offStride, "destination");
        });
    src.checkComplete("source");
    dst.checkComplete("destination");
    tableBytes += src.tableBytes() + dst.tableBytes();
    joinTables(src, dst, [&](const OwnedRun& s, const OwnedRun& d, Index pos,
                             Index count) {
      if (s.owner == me) {
        appendSendRun(sendOut,
                      SendSeg{pos, offAt(s, pos), offAt(d, pos), count,
                              s.offStride, d.offStride,
                              static_cast<Index>(d.owner)});
      } else if (d.owner == me) {
        appendRecvRun(recvOut,
                      RecvSeg{pos, offAt(d, pos), count, d.offStride,
                              static_cast<Index>(s.owner)});
      }
    });
  }
  return tableBytes;
}

/// Assembles runs-first plans from a schedule's provenance streams — the
/// same per-peer greedy the builders use, so the plans come out identical
/// to a fresh build's.
void assembleFromSegs(const std::vector<SendSeg>& sendSegs,
                      const std::vector<RecvSeg>& recvSegs, int me,
                      sched::Schedule& plan) {
  std::vector<std::vector<OffsetRun>> sendBy;
  std::vector<std::vector<OffsetRun>> recvBy;
  for (const SendSeg& g : sendSegs) {
    if (g.dstOwner == static_cast<Index>(me)) {
      sched::appendLocalRun(plan.localRuns,
                            LocalRun{g.srcOff, g.dstOff, g.count, g.srcStride,
                                     g.dstStride});
      continue;
    }
    if (sendBy.size() <= static_cast<size_t>(g.dstOwner)) {
      sendBy.resize(static_cast<size_t>(g.dstOwner) + 1);
    }
    sched::appendOffsetRun(sendBy[static_cast<size_t>(g.dstOwner)],
                           OffsetRun{g.srcOff, g.count, g.srcStride});
  }
  for (const RecvSeg& g : recvSegs) {
    if (recvBy.size() <= static_cast<size_t>(g.srcOwner)) {
      recvBy.resize(static_cast<size_t>(g.srcOwner) + 1);
    }
    sched::appendOffsetRun(recvBy[static_cast<size_t>(g.srcOwner)],
                           OffsetRun{g.dstOff, g.count, g.dstStride});
  }
  for (size_t p = 0; p < sendBy.size(); ++p) {
    if (sendBy[p].empty()) continue;
    plan.sends.push_back(
        sched::OffsetPlan{static_cast<int>(p), {}, std::move(sendBy[p])});
  }
  for (size_t p = 0; p < recvBy.size(); ++p) {
    if (recvBy[p].empty()) continue;
    plan.recvs.push_back(
        sched::OffsetPlan{static_cast<int>(p), {}, std::move(recvBy[p])});
  }
}

}  // namespace

McSchedule computeSchedule(transport::Comm& comm, const DistObject& srcObj,
                           const SetOfRegions& srcSet,
                           const DistObject& dstObj,
                           const SetOfRegions& dstSet, Method method) {
  ensureBuildMetrics();
  obs::ScopedSpan span(obs::phase::kBuild);
  g_buildStats = BuildStats{};
  const LibraryAdapter& srcLib = adapterFor(srcObj);
  const LibraryAdapter& dstLib = adapterFor(dstObj);
  srcLib.validate(srcObj, srcSet);
  dstLib.validate(dstObj, dstSet);
  const Index n = srcSet.numElements();
  MC_REQUIRE(n == dstSet.numElements(),
             "source and destination sets differ in size (%lld vs %lld)",
             static_cast<long long>(n),
             static_cast<long long>(dstSet.numElements()));
  const bool elementwise = g_buildElementwise.load(std::memory_order_relaxed);
  McSchedule out;
  if (method == Method::kDuplication) {
    out = elementwise
              ? buildIntraDuplicationElementwise(comm, srcLib, srcObj, srcSet,
                                                 dstLib, dstObj, dstSet, n)
              : buildIntraDuplication(comm, srcLib, srcObj, srcSet, dstLib,
                                      dstObj, dstSet, n);
  } else {
    out = elementwise
              ? buildIntraCooperationElementwise(comm, srcLib, srcObj, srcSet,
                                                 dstLib, dstObj, dstSet, n)
              : buildIntraCooperation(comm, srcLib, srcObj, srcSet, dstLib,
                                      dstObj, dstSet, n);
  }
  recordKernelDispatch(out.plan);
  noteBuildDone();
  return out;
}

McSchedule computeScheduleSend(transport::Comm& comm, const DistObject& srcObj,
                               const SetOfRegions& srcSet, int remoteProgram,
                               Method method) {
  ensureBuildMetrics();
  obs::ScopedSpan span(obs::phase::kBuild);
  g_buildStats = BuildStats{};
  const LibraryAdapter& srcLib = adapterFor(srcObj);
  srcLib.validate(srcObj, srcSet);
  const bool elementwise = g_buildElementwise.load(std::memory_order_relaxed);
  McSchedule out =
      method == Method::kDuplication
          ? buildInterDuplication(comm, srcLib, srcObj, srcSet, remoteProgram,
                                  /*isSender=*/true, elementwise)
          : buildInterCooperationSend(comm, srcLib, srcObj, srcSet,
                                      remoteProgram, elementwise);
  recordKernelDispatch(out.plan);
  noteBuildDone();
  return out;
}

McSchedule computeScheduleRecv(transport::Comm& comm, const DistObject& dstObj,
                               const SetOfRegions& dstSet, int remoteProgram,
                               Method method) {
  ensureBuildMetrics();
  obs::ScopedSpan span(obs::phase::kBuild);
  g_buildStats = BuildStats{};
  const LibraryAdapter& dstLib = adapterFor(dstObj);
  dstLib.validate(dstObj, dstSet);
  const bool elementwise = g_buildElementwise.load(std::memory_order_relaxed);
  McSchedule out;
  if (method == Method::kDuplication) {
    out = buildInterDuplication(comm, dstLib, dstObj, dstSet, remoteProgram,
                                /*isSender=*/false, elementwise);
  } else {
    out = elementwise ? buildInterCooperationRecvElementwise(
                            comm, dstLib, dstObj, dstSet, remoteProgram)
                      : buildInterCooperationRecv(comm, dstLib, dstObj,
                                                  dstSet, remoteProgram);
  }
  recordKernelDispatch(out.plan);
  noteBuildDone();
  return out;
}

McSchedule reverseSchedule(const McSchedule& sched) {
  McSchedule out;
  out.plan = sched::reverse(sched.plan);
  out.numElements = sched.numElements;
  out.remoteProgram = sched.remoteProgram;
  out.isSender = sched.remoteProgram >= 0 ? !sched.isSender : false;
  return out;
}

bool patchableSchedule(const McSchedule& old, const DistObject& newSrcObj,
                       const DistObject& newDstObj) {
  if (old.remoteProgram >= 0 || !old.hasProvenance) return false;
  const LibraryAdapter& srcLib = adapterFor(newSrcObj);
  const LibraryAdapter& dstLib = adapterFor(newDstObj);
  return srcLib.supportsLocalEnumeration(newSrcObj) &&
         dstLib.supportsLocalEnumeration(newDstObj);
}

McSchedule patchSchedule(transport::Comm& comm, const McSchedule& old,
                         const layout::DistDelta& delta,
                         const DistObject& newSrcObj,
                         const SetOfRegions& srcSet,
                         const DistObject& newDstObj,
                         const SetOfRegions& dstSet) {
  ensureBuildMetrics();
  obs::ScopedSpan span(obs::phase::kBuild);
  g_buildStats = BuildStats{};
  g_patchStats = PatchStats{};
  MC_REQUIRE(old.remoteProgram < 0,
             "patchSchedule handles intra-program schedules only");
  MC_REQUIRE(old.hasProvenance,
             "patchSchedule needs build provenance (intra-program "
             "computeSchedule records it; reversed schedules do not)");
  const LibraryAdapter& srcLib = adapterFor(newSrcObj);
  const LibraryAdapter& dstLib = adapterFor(newDstObj);
  srcLib.validate(newSrcObj, srcSet);
  dstLib.validate(newDstObj, dstSet);
  MC_REQUIRE(srcLib.supportsLocalEnumeration(newSrcObj) &&
                 dstLib.supportsLocalEnumeration(newDstObj),
             "patching is communication-free and needs locally enumerable "
             "descriptors on both sides");
  const Index n = srcSet.numElements();
  MC_REQUIRE(n == dstSet.numElements() && n == old.numElements,
             "patchSchedule set sizes disagree with the cached schedule "
             "(%lld / %lld vs %lld)",
             static_cast<long long>(n),
             static_cast<long long>(dstSet.numElements()),
             static_cast<long long>(old.numElements));

  const int me = comm.rank();
  McSchedule out;
  out.numElements = n;
  out.plan.bufferLocalCopies = false;
  // Re-deriving ownership for the migrated positions costs what the
  // duplication build would charge for that many elements — the modeled
  // cost scales with the migration, not the set.
  const Index migrated = std::min(n, delta.migratedElements());
  comm.advance(2.0 *
               (srcLib.modeledElementDereferenceCost(newSrcObj) +
                dstLib.modeledElementDereferenceCost(newDstObj)) *
               static_cast<double>(migrated) / comm.size());
  comm.compute([&] {
    std::vector<SendSeg> freshSend;
    std::vector<RecvSeg> freshRecv;
    g_buildStats.ownershipTableBytes +=
        buildFreshSegs(me, srcLib, newSrcObj, srcSet, dstLib, newDstObj,
                       dstSet, delta, n, freshSend, freshRecv);
    std::vector<SendSeg> keptSend;
    std::vector<RecvSeg> keptRecv;
    subtractDelta(old.sendSegs, delta.intervals(), sliceSendSeg,
                  [&](const SendSeg& s) { keptSend.push_back(s); });
    subtractDelta(old.recvSegs, delta.intervals(), sliceRecvSeg,
                  [&](const RecvSeg& s) { keptRecv.push_back(s); });
    g_patchStats.segmentsReused = keptSend.size() + keptRecv.size();
    g_patchStats.segmentsRebuilt = freshSend.size() + freshRecv.size();
    g_patchStats.elementsPatched = migrated;
    out.sendSegs.reserve(keptSend.size() + freshSend.size());
    out.recvSegs.reserve(keptRecv.size() + freshRecv.size());
    mergeSegStreams(keptSend, freshSend, out.sendSegs,
                    [](std::vector<SendSeg>& lane, const SendSeg& g) {
                      appendSendRun(lane, g);
                    });
    mergeSegStreams(keptRecv, freshRecv, out.recvSegs,
                    [](std::vector<RecvSeg>& lane, const RecvSeg& g) {
                      appendRecvRun(lane, g);
                    });
    assembleFromSegs(out.sendSegs, out.recvSegs, me, out.plan);
  });
  out.hasProvenance = true;
  recordKernelDispatch(out.plan);
  noteBuildDone();
  ++g_patchCount;
  g_patchElementsTotal += static_cast<std::uint64_t>(migrated);
  return out;
}

layout::DistDelta computeDelta(const DistObject& oldObj,
                               const DistObject& newObj,
                               const SetOfRegions& set) {
  const LibraryAdapter& oldLib = adapterFor(oldObj);
  const LibraryAdapter& newLib = adapterFor(newObj);
  MC_REQUIRE(oldLib.supportsLocalEnumeration(oldObj) &&
                 newLib.supportsLocalEnumeration(newObj),
             "computeDelta needs locally enumerable descriptors");
  const Index n = set.numElements();
  layout::DistDelta delta;
  if (n == 0) return delta;
  ChunkTable a(0, n);
  ChunkTable b(0, n);
  oldLib.enumerateRangeRuns(
      oldObj, set, 0, n,
      [&](Index lin, int owner, Index off, Index count, Index offStride) {
        a.append(lin, owner, off, count, offStride, "old");
      });
  newLib.enumerateRangeRuns(
      newObj, set, 0, n,
      [&](Index lin, int owner, Index off, Index count, Index offStride) {
        b.append(lin, owner, off, count, offStride, "new");
      });
  a.checkComplete("old");
  b.checkComplete("new");
  joinTables(a, b, [&](const OwnedRun& s, const OwnedRun& d, Index pos,
                       Index count) {
    // A segment is unchanged iff owner and offset progression agree; when
    // only the strides differ some positions may still coincide — marking
    // the whole segment migrated is a safe over-approximation.
    if (s.owner == d.owner && offAt(s, pos) == offAt(d, pos) &&
        (count == 1 || s.offStride == d.offStride)) {
      return;
    }
    delta.add(pos, pos + count);
  });
  return delta;
}

layout::DistDelta deltaFromMigratedIndices(
    const SetOfRegions& set, std::span<const layout::Index> sortedMigrated) {
  layout::DistDelta delta;
  if (sortedMigrated.empty()) return delta;
  const auto migrated = [&](Index g) {
    return std::binary_search(sortedMigrated.begin(), sortedMigrated.end(), g);
  };
  Index lin = 0;
  for (const Region& r : set.regions()) {
    switch (r.kind()) {
      case Region::Kind::kIndices: {
        const std::vector<Index>& ids = r.asIndices();
        for (size_t k = 0; k < ids.size(); ++k) {
          if (migrated(ids[k])) {
            delta.add(lin + static_cast<Index>(k),
                      lin + static_cast<Index>(k) + 1);
          }
        }
        break;
      }
      case Region::Kind::kRange: {
        const ElementRange& er = r.asRange();
        const Index cnt = er.numElements();
        for (Index k = 0; k < cnt; ++k) {
          if (migrated(er.at(k))) delta.add(lin + k, lin + k + 1);
        }
        break;
      }
      case Region::Kind::kSection:
        MC_REQUIRE(false,
                   "deltaFromMigratedIndices supports index-list and range "
                   "regions (their elements are global indices); use "
                   "computeDelta for section sets");
    }
    lin += r.numElements();
  }
  return delta;
}

sched::Schedule buildRedistMove(transport::Comm& comm,
                                const DistObject& oldObj,
                                const DistObject& newObj,
                                const SetOfRegions& set,
                                const layout::DistDelta& delta) {
  ensureBuildMetrics();
  obs::ScopedSpan span(obs::phase::kBuild);
  g_buildStats = BuildStats{};
  const LibraryAdapter& oldLib = adapterFor(oldObj);
  const LibraryAdapter& newLib = adapterFor(newObj);
  MC_REQUIRE(oldLib.supportsLocalEnumeration(oldObj) &&
                 newLib.supportsLocalEnumeration(newObj),
             "buildRedistMove needs locally enumerable descriptors");
  const Index n = set.numElements();
  const int me = comm.rank();
  sched::Schedule plan;
  plan.bufferLocalCopies = false;
  const Index migrated = std::min(n, delta.migratedElements());
  comm.advance(2.0 *
               (oldLib.modeledElementDereferenceCost(oldObj) +
                newLib.modeledElementDereferenceCost(newObj)) *
               static_cast<double>(migrated) / comm.size());
  comm.compute([&] {
    std::vector<std::vector<OffsetRun>> sendBy;
    std::vector<std::vector<OffsetRun>> recvBy;
    for (const layout::LinInterval& ivRaw : delta.intervals()) {
      const Index lo = std::max<Index>(0, ivRaw.lo);
      const Index hi = std::min(n, ivRaw.hi);
      if (hi <= lo) continue;
      ChunkTable src(lo, hi - lo);
      ChunkTable dst(lo, hi - lo);
      oldLib.enumerateRangeRuns(
          oldObj, set, lo, hi,
          [&](Index lin, int owner, Index off, Index count, Index offStride) {
            src.append(lin, owner, off, count, offStride, "old");
          });
      newLib.enumerateRangeRuns(
          newObj, set, lo, hi,
          [&](Index lin, int owner, Index off, Index count, Index offStride) {
            dst.append(lin, owner, off, count, offStride, "new");
          });
      src.checkComplete("old");
      dst.checkComplete("new");
      g_buildStats.ownershipTableBytes += src.tableBytes() + dst.tableBytes();
      joinTables(src, dst, [&](const OwnedRun& s, const OwnedRun& d,
                               Index pos, Index count) {
        if (s.owner == me && d.owner == me) {
          sched::appendLocalRun(plan.localRuns,
                                LocalRun{offAt(s, pos), offAt(d, pos), count,
                                         s.offStride, d.offStride});
        } else if (s.owner == me) {
          if (sendBy.size() <= static_cast<size_t>(d.owner)) {
            sendBy.resize(static_cast<size_t>(d.owner) + 1);
          }
          sched::appendOffsetRun(sendBy[static_cast<size_t>(d.owner)],
                                 OffsetRun{offAt(s, pos), count, s.offStride});
        } else if (d.owner == me) {
          if (recvBy.size() <= static_cast<size_t>(s.owner)) {
            recvBy.resize(static_cast<size_t>(s.owner) + 1);
          }
          sched::appendOffsetRun(recvBy[static_cast<size_t>(s.owner)],
                                 OffsetRun{offAt(d, pos), count, d.offStride});
        }
      });
    }
    for (size_t p = 0; p < sendBy.size(); ++p) {
      if (!sendBy[p].empty()) {
        plan.sends.push_back(
            sched::OffsetPlan{static_cast<int>(p), {}, std::move(sendBy[p])});
      }
    }
    for (size_t p = 0; p < recvBy.size(); ++p) {
      if (!recvBy[p].empty()) {
        plan.recvs.push_back(
            sched::OffsetPlan{static_cast<int>(p), {}, std::move(recvBy[p])});
      }
    }
  });
  recordKernelDispatch(plan);
  noteBuildDone();
  return plan;
}

const BuildStats& lastBuildStats() { return g_buildStats; }

const PatchStats& lastPatchStats() { return g_patchStats; }

namespace testing {
bool buildElementwiseForTest(bool enable) {
  return g_buildElementwise.exchange(enable, std::memory_order_relaxed);
}
bool buildElementwiseEnabled() {
  return g_buildElementwise.load(std::memory_order_relaxed);
}
}  // namespace testing

}  // namespace mc::core
