// Regions and SetOfRegions — the data-specification layer of Meta-Chaos
// (paper Section 4.1.1).
//
// Each data parallel library defines its own Region type:
//   * regular libraries (HPF, Multiblock Parti): a regularly strided array
//     section (SectionRegion);
//   * Chaos: a set of global array indices (IndexRegion);
//   * pC++/Tulip: a range of collection elements (RangeRegion).
//
// Regions are gathered into an ordered SetOfRegions.  The linearization of a
// Region is library-defined (row-major for sections, list order for index
// sets, ascending for ranges); the linearization of a SetOfRegions is the
// concatenation of its Regions' linearizations (Section 4.1.2).  The
// linearization is *virtual*: nothing here materializes it — it exists only
// as the ordering the schedule builders enumerate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "layout/section.h"

namespace mc::core {

/// A contiguous strided range of collection elements, lo..hi inclusive.
struct ElementRange {
  layout::Index lo = 0;
  layout::Index hi = -1;  // inclusive
  layout::Index stride = 1;
  layout::Index numElements() const {
    return hi < lo ? 0 : (hi - lo) / stride + 1;
  }
  layout::Index at(layout::Index k) const { return lo + k * stride; }
};

class Region {
 public:
  enum class Kind { kSection, kIndices, kRange };

  /// Region of a regular library: an array section.
  static Region section(layout::RegularSection s);
  /// Region of an irregular library: explicit global indices, in
  /// linearization order.
  static Region indices(std::vector<layout::Index> idx);
  /// Region of a collection library: an element range (hi inclusive).
  static Region range(layout::Index lo, layout::Index hi,
                      layout::Index stride = 1);

  Kind kind() const { return kind_; }
  layout::Index numElements() const;

  const layout::RegularSection& asSection() const;
  const std::vector<layout::Index>& asIndices() const;
  const ElementRange& asRange() const;

 private:
  Kind kind_ = Kind::kSection;
  layout::RegularSection section_{};
  std::vector<layout::Index> indices_;
  ElementRange range_{};
};

/// An ordered collection of Regions of one kind.
class SetOfRegions {
 public:
  SetOfRegions() = default;
  explicit SetOfRegions(Region r) { add(std::move(r)); }

  /// Appends a region; all regions of a set must share one kind (they
  /// describe data held by a single library).
  void add(Region r);

  bool empty() const { return regions_.empty(); }
  const std::vector<Region>& regions() const { return regions_; }
  layout::Index numElements() const;

  /// The region kind; set must be non-empty.
  Region::Kind kind() const;

 private:
  std::vector<Region> regions_;
};

/// Wire formats for shipping sets between programs (used by the
/// inter-program duplication method).
std::vector<std::byte> serializeSet(const SetOfRegions& set);
SetOfRegions deserializeSet(std::span<const std::byte> bytes);

}  // namespace mc::core
