#include "core/mc_api.h"

#include <map>
#include <optional>

namespace mc::api {

namespace {

/// Per-virtual-processor handle tables.  Each SPMD rank runs on its own
/// thread, so thread_local state gives every rank an independent namespace,
/// exactly like the original library's per-process state.
struct ApiState {
  int next = 1;
  std::map<RegionId, core::Region> regions;
  std::map<SetId, core::SetOfRegions> sets;
  std::map<ObjectId, core::DistObject> objects;
  // Handles share cached schedules: two MC_ComputeSched calls with an
  // identical key return different handles to one underlying schedule.
  std::map<SchedId, std::shared_ptr<const core::McSchedule>> schedules;
};

ApiState& state() {
  thread_local ApiState s;
  return s;
}

template <typename M>
typename M::mapped_type& lookup(M& table, int id, const char* what) {
  const auto it = table.find(id);
  MC_REQUIRE(it != table.end(), "unknown %s handle %d", what, id);
  return it->second;
}

RegionId addSectionRegion(int ndims, const layout::Index* lo,
                          const layout::Index* hi,
                          const layout::Index* stride) {
  MC_REQUIRE(ndims >= 1 && ndims <= layout::kMaxRank,
             "region rank %d out of range", ndims);
  MC_REQUIRE(lo != nullptr && hi != nullptr);
  layout::RegularSection s;
  s.rank = ndims;
  for (int d = 0; d < ndims; ++d) {
    const auto dd = static_cast<size_t>(d);
    s.lo[dd] = lo[d];
    s.hi[dd] = hi[d];
    s.stride[dd] = stride != nullptr ? stride[d] : 1;
    MC_REQUIRE(s.stride[dd] > 0, "stride must be positive");
  }
  ApiState& st = state();
  const RegionId id = st.next++;
  st.regions.emplace(id, core::Region::section(s));
  return id;
}

}  // namespace

RegionId CreateRegion_HPF(int ndims, const layout::Index* lo,
                          const layout::Index* hi,
                          const layout::Index* stride) {
  return addSectionRegion(ndims, lo, hi, stride);
}

RegionId CreateRegion_Parti(int ndims, const layout::Index* lo,
                            const layout::Index* hi,
                            const layout::Index* stride) {
  return addSectionRegion(ndims, lo, hi, stride);
}

RegionId CreateRegion_Chaos(const layout::Index* indices,
                            layout::Index count) {
  MC_REQUIRE(indices != nullptr || count == 0);
  std::vector<layout::Index> ids(indices, indices + count);
  ApiState& st = state();
  const RegionId id = st.next++;
  st.regions.emplace(id, core::Region::indices(std::move(ids)));
  return id;
}

RegionId CreateRegion_PCXX(layout::Index lo, layout::Index hi,
                           layout::Index stride) {
  ApiState& st = state();
  const RegionId id = st.next++;
  st.regions.emplace(id, core::Region::range(lo, hi, stride));
  return id;
}

SetId MC_NewSetOfRegion() {
  ApiState& st = state();
  const SetId id = st.next++;
  st.sets.emplace(id, core::SetOfRegions{});
  return id;
}

void MC_AddRegion2Set(RegionId region, SetId set) {
  ApiState& st = state();
  const core::Region& r = lookup(st.regions, region, "region");
  lookup(st.sets, set, "set").add(r);
}

ObjectId MC_RegisterObject(core::DistObject obj) {
  ApiState& st = state();
  const ObjectId id = st.next++;
  st.objects.emplace(id, std::move(obj));
  return id;
}

SchedId MC_ComputeSched(transport::Comm& comm, ObjectId srcObj, SetId srcSet,
                        ObjectId dstObj, SetId dstSet, core::Method method) {
  ApiState& st = state();
  auto sched = core::defaultScheduleCache().getOrBuild(
      comm, lookup(st.objects, srcObj, "object"),
      lookup(st.sets, srcSet, "set"), lookup(st.objects, dstObj, "object"),
      lookup(st.sets, dstSet, "set"), method);
  const SchedId id = st.next++;
  st.schedules.emplace(id, std::move(sched));
  return id;
}

SchedId MC_ComputeSchedSend(transport::Comm& comm, ObjectId srcObj,
                            SetId srcSet, int remoteProgram,
                            core::Method method) {
  ApiState& st = state();
  auto sched = core::defaultScheduleCache().getOrBuildSend(
      comm, lookup(st.objects, srcObj, "object"),
      lookup(st.sets, srcSet, "set"), remoteProgram, method);
  const SchedId id = st.next++;
  st.schedules.emplace(id, std::move(sched));
  return id;
}

SchedId MC_ComputeSchedRecv(transport::Comm& comm, ObjectId dstObj,
                            SetId dstSet, int remoteProgram,
                            core::Method method) {
  ApiState& st = state();
  auto sched = core::defaultScheduleCache().getOrBuildRecv(
      comm, lookup(st.objects, dstObj, "object"),
      lookup(st.sets, dstSet, "set"), remoteProgram, method);
  const SchedId id = st.next++;
  st.schedules.emplace(id, std::move(sched));
  return id;
}

SchedId MC_ReverseSched(SchedId sched) {
  ApiState& st = state();
  core::McSchedule rev =
      core::reverseSchedule(*lookup(st.schedules, sched, "schedule"));
  const SchedId id = st.next++;
  st.schedules.emplace(id,
                       std::make_shared<const core::McSchedule>(std::move(rev)));
  return id;
}

const core::McSchedule& MC_GetSched(SchedId sched) {
  return *lookup(state().schedules, sched, "schedule");
}

const core::CacheStats& MC_SchedCacheStats() {
  return core::defaultScheduleCache().stats();
}

void MC_SchedCacheResetStats() { core::defaultScheduleCache().resetStats(); }

void MC_SchedCacheClear() {
  core::ScheduleCache& c = core::defaultScheduleCache();
  c.clear();
  c.resetStats();
}

void MC_SetSchedCacheCapacity(std::size_t capacity) {
  core::defaultScheduleCache().setCapacity(capacity);
}

void MC_FreeRegion(RegionId region) {
  MC_REQUIRE(state().regions.erase(region) == 1, "unknown region handle %d",
             region);
}
void MC_FreeSet(SetId set) {
  MC_REQUIRE(state().sets.erase(set) == 1, "unknown set handle %d", set);
}
void MC_FreeObject(ObjectId obj) {
  MC_REQUIRE(state().objects.erase(obj) == 1, "unknown object handle %d", obj);
}
void MC_FreeSched(SchedId sched) {
  MC_REQUIRE(state().schedules.erase(sched) == 1,
             "unknown schedule handle %d", sched);
}

void MC_Reset() { state() = ApiState{}; }

}  // namespace mc::api
