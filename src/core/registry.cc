#include "core/registry.h"

#include <mutex>

#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"

namespace mc::core {

std::vector<LinLoc> LibraryAdapter::enumerateOwned(
    const DistObject& obj, const SetOfRegions& set,
    transport::Comm& comm) const {
  MC_REQUIRE(supportsLocalEnumeration(obj),
             "library '%s' cannot enumerate ownership locally; the adapter "
             "must override enumerateOwned",
             name().c_str());
  std::vector<LinLoc> out;
  const int me = comm.rank();
  enumerateAll(obj, set,
               [&](layout::Index lin, int owner, layout::Index offset) {
                 if (owner == me) out.push_back(LinLoc{lin, offset});
               });
  return out;  // enumerateAll visits in order, so `out` is sorted by lin
}

void LibraryAdapter::enumerateRange(
    const DistObject& obj, const SetOfRegions& set, layout::Index linLo,
    layout::Index linHi,
    const std::function<void(layout::Index, int, layout::Index)>& fn) const {
  MC_REQUIRE(supportsLocalEnumeration(obj),
             "library '%s' cannot enumerate ownership locally",
             name().c_str());
  enumerateAll(obj, set, [&](layout::Index lin, int owner,
                             layout::Index offset) {
    if (lin >= linLo && lin < linHi) fn(lin, owner, offset);
  });
}

std::vector<LinRun> LibraryAdapter::enumerateOwnedRuns(
    const DistObject& obj, const SetOfRegions& set,
    transport::Comm& comm) const {
  std::vector<LinRun> out;
  if (supportsLocalEnumeration(obj)) {
    // Locally enumerable descriptors need no communication at all: filter
    // the run stream down to this processor's runs.
    const int me = comm.rank();
    enumerateRangeRuns(obj, set, 0, set.numElements(),
                       [&](layout::Index lin, int owner, layout::Index off,
                           layout::Index count, layout::Index offStride) {
                         if (owner != me) return;
                         appendLinRun(out, LinRun{lin, off, count, offStride});
                       });
    return out;
  }
  // Dereference requires communication (Chaos with a distributed table):
  // run the collective element enumeration and coalesce its sorted output.
  for (const LinLoc& ll : enumerateOwned(obj, set, comm)) {
    appendLinElement(out, ll.lin, ll.offset);
  }
  return out;
}

void LibraryAdapter::enumerateRangeRuns(const DistObject& obj,
                                        const SetOfRegions& set,
                                        layout::Index linLo,
                                        layout::Index linHi,
                                        const RunFn& fn) const {
  // Element-wise fallback: coalesce consecutive same-owner callbacks into
  // maximal runs.  O(linHi - linLo) time but O(1) extra memory; adapters
  // with analytic distributions override this with O(runs) enumeration.
  LinRun cur;
  int curOwner = -1;
  bool open = false;
  enumerateRange(obj, set, linLo, linHi,
                 [&](layout::Index lin, int owner, layout::Index off) {
                   if (open && owner == curOwner &&
                       cur.lin + cur.count == lin) {
                     if (cur.count == 1) {
                       cur.offStride = off - cur.off;
                       ++cur.count;
                       return;
                     }
                     if (off == cur.off + cur.count * cur.offStride) {
                       ++cur.count;
                       return;
                     }
                   }
                   if (open) {
                     fn(cur.lin, curOwner, cur.off, cur.count, cur.offStride);
                   }
                   cur = LinRun{lin, off, 1, 0};
                   curOwner = owner;
                   open = true;
                 });
  if (open) fn(cur.lin, curOwner, cur.off, cur.count, cur.offStride);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::unique_ptr<LibraryAdapter> adapter) {
  MC_REQUIRE(adapter != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = adapter->name();
  MC_REQUIRE(adapters_.find(key) == adapters_.end(),
             "library '%s' is already registered", key.c_str());
  adapters_.emplace(key, std::move(adapter));
}

bool Registry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return adapters_.find(name) != adapters_.end();
}

const LibraryAdapter& Registry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = adapters_.find(name);
  MC_REQUIRE(it != adapters_.end(), "no adapter registered for library '%s'",
             name.c_str());
  return *it->second;
}

void registerBuiltinAdapters() {
  static std::once_flag once;
  std::call_once(once, [] {
    Registry& r = Registry::instance();
    r.add(std::make_unique<PartiAdapter>());
    r.add(std::make_unique<HpfAdapter>());
    r.add(std::make_unique<ChaosAdapter>());
    r.add(std::make_unique<TulipAdapter>());
  });
}

}  // namespace mc::core
