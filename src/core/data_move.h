// Meta-Chaos data movement (paper Section 4.1.4).
//
// Executing a schedule packs source elements per destination processor in
// linearization order, ships at most one message per processor pair, copies
// processor-local elements *directly* (no staging buffer — the advantage
// over Multiblock Parti the paper notes in Section 5.3), and unpacks on the
// destination side.  Schedules are reusable: the typical pattern builds one
// schedule before a time-step loop and moves data every step.
//
//   * dataMove        — both data structures in the calling program.
//   * dataMoveSend    — source half of an inter-program move; the remote
//                       program concurrently calls dataMoveRecv.
//   * dataMoveRecv    — destination half.
//
// All three are collective over the program(s) involved: every processor
// must call them, even processors with nothing to transfer, so that
// inter-program tag counters stay paired.
//
// All three are one-shot conveniences over sched::Executor; a time-step
// loop moving data every iteration should instead bind an Executor to the
// schedule once (Executor for dataMove, Executor::sender / ::receiver for
// the inter-program halves) and run it per step, keeping its persistent
// pack buffers.
#pragma once

#include "core/schedule_builder.h"
#include "sched/executor.h"

namespace mc::core {

template <typename T>
void dataMove(transport::Comm& comm, const McSchedule& sched,
              std::span<const T> src, std::span<T> dst) {
  MC_REQUIRE(sched.remoteProgram < 0,
             "inter-program schedules need dataMoveSend/dataMoveRecv");
  const int tag = comm.nextUserTag();
  sched::execute<T>(comm, sched.plan, src, dst, tag);
}

template <typename T>
void dataMoveSend(transport::Comm& comm, const McSchedule& sched,
                  std::span<const T> src) {
  MC_REQUIRE(sched.remoteProgram >= 0 && sched.isSender,
             "dataMoveSend needs the sending half of an inter-program "
             "schedule");
  sched::Executor<T>::sender(comm, sched.plan, sched.remoteProgram)
      .runSend(src);
}

template <typename T>
void dataMoveRecv(transport::Comm& comm, const McSchedule& sched,
                  std::span<T> dst) {
  MC_REQUIRE(sched.remoteProgram >= 0 && !sched.isSender,
             "dataMoveRecv needs the receiving half of an inter-program "
             "schedule");
  sched::Executor<T>::receiver(comm, sched.plan, sched.remoteProgram)
      .runRecv(dst);
}

}  // namespace mc::core
