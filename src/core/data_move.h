// Meta-Chaos data movement (paper Section 4.1.4).
//
// Executing a schedule packs source elements per destination processor in
// linearization order, ships at most one message per processor pair, copies
// processor-local elements *directly* (no staging buffer — the advantage
// over Multiblock Parti the paper notes in Section 5.3), and unpacks on the
// destination side.  Schedules are reusable: the typical pattern builds one
// schedule before a time-step loop and moves data every step.
//
//   * dataMove        — both data structures in the calling program.
//   * dataMoveSend    — source half of an inter-program move; the remote
//                       program concurrently calls dataMoveRecv.
//   * dataMoveRecv    — destination half.
//
// All three are collective over the program(s) involved: every processor
// must call them, even processors with nothing to transfer, so that
// inter-program tag counters stay paired.
#pragma once

#include "core/schedule_builder.h"

namespace mc::core {

template <typename T>
void dataMove(transport::Comm& comm, const McSchedule& sched,
              std::span<const T> src, std::span<T> dst) {
  MC_REQUIRE(sched.remoteProgram < 0,
             "inter-program schedules need dataMoveSend/dataMoveRecv");
  const int tag = comm.nextUserTag();
  sched::execute<T>(comm, sched.plan, src, dst, tag);
}

template <typename T>
void dataMoveSend(transport::Comm& comm, const McSchedule& sched,
                  std::span<const T> src) {
  static_assert(std::is_trivially_copyable_v<T>);
  MC_REQUIRE(sched.remoteProgram >= 0 && sched.isSender,
             "dataMoveSend needs the sending half of an inter-program "
             "schedule");
  const int tag = comm.nextInterTag(sched.remoteProgram);
  MC_CHECK(sched.plan.localElementCount() == 0);
  for (const sched::OffsetPlan& plan : sched.plan.sends) {
    std::vector<T> buf;
    comm.compute([&] {
      if (!plan.runs.empty()) {
        buf.resize(static_cast<size_t>(plan.elementCount()));
        sched::packRuns(src, std::span<const sched::OffsetRun>(plan.runs),
                        buf.data());
        return;
      }
      buf.reserve(plan.offsets.size());
      for (layout::Index off : plan.offsets) {
        buf.push_back(src[static_cast<size_t>(off)]);
      }
    });
    comm.sendTo(sched.remoteProgram, plan.peer, tag, buf);
  }
}

template <typename T>
void dataMoveRecv(transport::Comm& comm, const McSchedule& sched,
                  std::span<T> dst) {
  static_assert(std::is_trivially_copyable_v<T>);
  MC_REQUIRE(sched.remoteProgram >= 0 && !sched.isSender,
             "dataMoveRecv needs the receiving half of an inter-program "
             "schedule");
  const int tag = comm.nextInterTag(sched.remoteProgram);
  MC_CHECK(sched.plan.localElementCount() == 0);
  for (const sched::OffsetPlan& plan : sched.plan.recvs) {
    const std::vector<T> buf =
        comm.recvFrom<T>(sched.remoteProgram, plan.peer, tag);
    MC_REQUIRE(buf.size() == static_cast<size_t>(plan.elementCount()),
               "schedule mismatch: remote rank %d sent %zu elements, "
               "expected %lld",
               plan.peer, buf.size(),
               static_cast<long long>(plan.elementCount()));
    comm.compute([&] {
      if (!plan.runs.empty()) {
        sched::unpackRuns(std::span<const sched::OffsetRun>(plan.runs),
                          buf.data(), dst);
        return;
      }
      size_t i = 0;
      for (layout::Index off : plan.offsets) {
        dst[static_cast<size_t>(off)] = buf[i++];
      }
    });
  }
}

}  // namespace mc::core
