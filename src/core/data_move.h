// Meta-Chaos data movement (paper Section 4.1.4).
//
// Executing a schedule packs source elements per destination processor in
// linearization order, ships at most one message per processor pair, copies
// processor-local elements *directly* (no staging buffer — the advantage
// over Multiblock Parti the paper notes in Section 5.3), and unpacks on the
// destination side.  Schedules are reusable: the typical pattern builds one
// schedule before a time-step loop and moves data every step.
//
//   * dataMove        — both data structures in the calling program.
//   * dataMoveSend    — source half of an inter-program move; the remote
//                       program concurrently calls dataMoveRecv.
//   * dataMoveRecv    — destination half.
//   * dataMoveBegin / dataMoveEnd — split-phase form of dataMove: Begin
//                       posts the sends and returns a PendingMove the
//                       caller can poll() while computing away from the
//                       schedule's destination footprint; End drains the
//                       rest and unpacks.  Results are bitwise identical
//                       to dataMove.
//
// All three are collective over the program(s) involved: every processor
// must call them, even processors with nothing to transfer, so that
// inter-program tag counters stay paired.
//
// All three are one-shot conveniences over sched::Executor; a time-step
// loop moving data every iteration should instead bind an Executor to the
// schedule once (Executor for dataMove, Executor::sender / ::receiver for
// the inter-program halves) and run it per step, keeping its persistent
// pack buffers.
#pragma once

#include <memory>
#include <optional>

#include "core/schedule_builder.h"
#include "sched/executor.h"

namespace mc::core {

template <typename T>
void dataMove(transport::Comm& comm, const McSchedule& sched,
              std::span<const T> src, std::span<T> dst) {
  MC_REQUIRE(sched.remoteProgram < 0,
             "inter-program schedules need dataMoveSend/dataMoveRecv");
  const int tag = comm.nextUserTag();
  sched::execute<T>(comm, sched.plan, src, dst, tag);
}

/// A split-phase dataMove in flight: owns the bound executor plus the
/// pending handle.  Move-only.  Call finish(dst) (or dataMoveEnd) exactly
/// once; a PendingMove dropped without finishing cancels cleanly (drains
/// and discards the exchange's messages).  The schedule must outlive the
/// PendingMove.
template <typename T>
class PendingMove {
 public:
  PendingMove(transport::Comm& comm, const McSchedule& sched,
              std::span<const T> src, int tag)
      : exec_(std::make_unique<sched::Executor<T>>(comm, sched.plan)) {
    pending_.emplace(exec_->start(src, tag));
  }
  PendingMove(PendingMove&&) noexcept = default;

  /// Non-blocking drain of already-arrived messages; true when all are in.
  bool poll() { return pending_->poll(); }
  bool done() const { return pending_->done(); }
  /// Drains the rest, applies local transfers, unpacks into dst.
  void finish(std::span<T> dst) { pending_->finish(dst); }
  /// Offsets the move touches (see sched/footprint.h for the contract on
  /// what the caller may compute between begin and end).
  const sched::Footprint& footprint() const { return exec_->footprint(); }

 private:
  std::unique_ptr<sched::Executor<T>> exec_;  // stable address for pending_
  std::optional<typename sched::Executor<T>::Pending> pending_;
};

/// Starts a split-phase intra-program move; pair with dataMoveEnd.
/// Collective (every processor begins and ends in the same order).
template <typename T>
PendingMove<T> dataMoveBegin(transport::Comm& comm, const McSchedule& sched,
                             std::span<const T> src) {
  MC_REQUIRE(sched.remoteProgram < 0,
             "inter-program schedules need dataMoveSend/dataMoveRecv");
  return PendingMove<T>(comm, sched, src, comm.nextUserTag());
}

template <typename T>
void dataMoveEnd(PendingMove<T>& move, std::span<T> dst) {
  move.finish(dst);
}

template <typename T>
void dataMoveSend(transport::Comm& comm, const McSchedule& sched,
                  std::span<const T> src) {
  MC_REQUIRE(sched.remoteProgram >= 0 && sched.isSender,
             "dataMoveSend needs the sending half of an inter-program "
             "schedule");
  sched::Executor<T>::sender(comm, sched.plan, sched.remoteProgram)
      .runSend(src);
}

template <typename T>
void dataMoveRecv(transport::Comm& comm, const McSchedule& sched,
                  std::span<T> dst) {
  MC_REQUIRE(sched.remoteProgram >= 0 && !sched.isSender,
             "dataMoveRecv needs the receiving half of an inter-program "
             "schedule");
  sched::Executor<T>::receiver(comm, sched.plan, sched.remoteProgram)
      .runRecv(dst);
}

}  // namespace mc::core
