#include "core/schedule_cache.h"

#include "core/registry.h"
#include "obs/metrics.h"

namespace mc::core {

namespace {

const LibraryAdapter& adapterOf(const DistObject& obj) {
  registerBuiltinAdapters();
  return Registry::instance().get(obj.library());
}

void hashRegion(HashStream& h, const Region& r) {
  h.pod(r.kind());
  switch (r.kind()) {
    case Region::Kind::kSection: {
      const layout::RegularSection& s = r.asSection();
      h.pod(s.rank);
      for (int d = 0; d < s.rank; ++d) {
        const auto dd = static_cast<size_t>(d);
        h.pod(s.lo[dd]);
        h.pod(s.hi[dd]);
        h.pod(s.stride[dd]);
      }
      break;
    }
    case Region::Kind::kIndices:
      h.podSpan(std::span<const layout::Index>(r.asIndices()));
      break;
    case Region::Kind::kRange: {
      const ElementRange& e = r.asRange();
      h.pod(e.lo);
      h.pod(e.hi);
      h.pod(e.stride);
      break;
    }
  }
}

/// All processors of the program (and, when `remoteProgram` >= 0, of the
/// remote program too) agree whether every participant has a cached copy.
bool agreeOnHit(transport::Comm& comm, int remoteProgram, bool localHit) {
  int hit = static_cast<int>(
      comm.allreduceValue(localHit ? 1 : 0,
                          [](int a, int b) { return a < b ? a : b; }));
  if (remoteProgram >= 0) {
    // Exchange the program-wide bit rank0 <-> rank0, then broadcast.
    const int tag = comm.nextInterTag(remoteProgram);
    if (comm.rank() == 0) {
      comm.sendValueTo(remoteProgram, 0, tag, hit);
      const int theirs = comm.recvValueFrom<int>(remoteProgram, 0, tag);
      hit = hit < theirs ? hit : theirs;
    }
    hit = comm.bcastValue(hit, 0);
  }
  return hit != 0;
}

std::shared_ptr<const McSchedule> compressed(McSchedule sched) {
  sched.plan.compress();
  // Cached schedules keep only the run form; the expanded offsets would
  // double the resident footprint for no executor benefit.
  sched.plan.releaseExpandedForms();
  return std::make_shared<const McSchedule>(std::move(sched));
}

HashStream::Digest intraKey(transport::Comm& comm, const DistObject& srcObj,
                            const SetOfRegions& srcSet,
                            const DistObject& dstObj,
                            const SetOfRegions& dstSet, Method method) {
  HashStream h;
  h.str("intra");
  h.pod(method);
  h.pod(comm.program());
  h.pod(comm.size());
  hashScheduleSide(h, srcObj, srcSet);
  hashScheduleSide(h, dstObj, dstSet);
  return h.digest();
}

}  // namespace

void hashScheduleSide(HashStream& h, const DistObject& obj,
                      const SetOfRegions& set) {
  const LibraryAdapter& lib = adapterOf(obj);
  h.str(obj.library());
  h.pod(lib.localFingerprint(obj));
  h.pod(set.regions().size());
  for (const Region& r : set.regions()) hashRegion(h, r);
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrBuild(
    transport::Comm& comm, const DistObject& srcObj,
    const SetOfRegions& srcSet, const DistObject& dstObj,
    const SetOfRegions& dstSet, Method method) {
  const auto key = intraKey(comm, srcObj, srcSet, dstObj, dstSet, method);

  std::shared_ptr<const McSchedule> local = cache_.peek(key);
  if (agreeOnHit(comm, /*remoteProgram=*/-1, local != nullptr)) {
    cache_.noteHit(key);
    return local;
  }
  cache_.noteMiss();
  auto built =
      compressed(computeSchedule(comm, srcObj, srcSet, dstObj, dstSet, method));
  cache_.insert(key, built);
  return built;
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrPatch(
    transport::Comm& comm, const DistObject& oldSrcObj,
    const DistObject& newSrcObj, const SetOfRegions& srcSet,
    const DistObject& oldDstObj, const DistObject& newDstObj,
    const SetOfRegions& dstSet, const layout::DistDelta& delta,
    Method method) {
  const auto oldKey =
      intraKey(comm, oldSrcObj, srcSet, oldDstObj, dstSet, method);
  const auto newKey =
      intraKey(comm, newSrcObj, srcSet, newDstObj, dstSet, method);
  // Delta-secondary key: a rank that cannot fingerprint the *new*
  // descriptors cheaply (or whose fingerprints churn) still hits when the
  // same (old schedule, delta) pair recurs.
  HashStream dh;
  dh.str("patch");
  dh.pod(oldKey);
  dh.pod(delta.fingerprint());
  const auto deltaKey = dh.digest();

  std::shared_ptr<const McSchedule> local = cache_.peek(newKey);
  const bool viaNewKey = local != nullptr;
  if (!local) local = cache_.peek(deltaKey);
  if (agreeOnHit(comm, /*remoteProgram=*/-1, local != nullptr)) {
    cache_.noteHit(viaNewKey ? newKey : deltaKey);
    return local;
  }
  cache_.noteMiss();

  // Patch only when *every* rank holds a patchable old schedule — the
  // fallback is a collective build, so the choice must be uniform.
  std::shared_ptr<const McSchedule> old = cache_.peek(oldKey);
  const bool canPatch =
      old != nullptr && patchableSchedule(*old, newSrcObj, newDstObj);
  if (agreeOnHit(comm, /*remoteProgram=*/-1, canPatch)) {
    ++patches_;
    auto patched = compressed(patchSchedule(comm, *old, delta, newSrcObj,
                                            srcSet, newDstObj, dstSet));
    cache_.insert(newKey, patched);
    cache_.insert(deltaKey, patched);
    return patched;
  }
  ++patchFallbacks_;
  auto built = compressed(
      computeSchedule(comm, newSrcObj, srcSet, newDstObj, dstSet, method));
  cache_.insert(newKey, built);
  cache_.insert(deltaKey, built);
  return built;
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrBuildSend(
    transport::Comm& comm, const DistObject& srcObj,
    const SetOfRegions& srcSet, int remoteProgram, Method method) {
  HashStream h;
  h.str("send");
  h.pod(method);
  h.pod(comm.program());
  h.pod(comm.size());
  h.pod(remoteProgram);
  h.pod(comm.programInfo(remoteProgram).nprocs);
  hashScheduleSide(h, srcObj, srcSet);
  const auto key = h.digest();

  std::shared_ptr<const McSchedule> local = cache_.peek(key);
  if (agreeOnHit(comm, remoteProgram, local != nullptr)) {
    cache_.noteHit(key);
    return local;
  }
  cache_.noteMiss();
  auto built = compressed(
      computeScheduleSend(comm, srcObj, srcSet, remoteProgram, method));
  cache_.insert(key, built);
  return built;
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrBuildRecv(
    transport::Comm& comm, const DistObject& dstObj,
    const SetOfRegions& dstSet, int remoteProgram, Method method) {
  HashStream h;
  h.str("recv");
  h.pod(method);
  h.pod(comm.program());
  h.pod(comm.size());
  h.pod(remoteProgram);
  h.pod(comm.programInfo(remoteProgram).nprocs);
  hashScheduleSide(h, dstObj, dstSet);
  const auto key = h.digest();

  std::shared_ptr<const McSchedule> local = cache_.peek(key);
  if (agreeOnHit(comm, remoteProgram, local != nullptr)) {
    cache_.noteHit(key);
    return local;
  }
  cache_.noteMiss();
  auto built = compressed(
      computeScheduleRecv(comm, dstObj, dstSet, remoteProgram, method));
  cache_.insert(key, built);
  return built;
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrBuildSendByLayout(
    transport::Comm& comm, const DistObject& srcObj,
    const SetOfRegions& srcSet, int remoteProgram,
    const HashStream::Digest& remoteLayout, Method method) {
  // Program identities (local and remote) are deliberately absent from the
  // key: only the two layouts and the topology widths matter, so a schedule
  // built against client program 3 serves client program 57 with the same
  // layout.  The executor retargets plan peers via globalRankOf at bind.
  HashStream h;
  h.str("send_layout");
  h.pod(method);
  h.pod(comm.size());
  h.pod(comm.programInfo(remoteProgram).nprocs);
  h.pod(remoteLayout);
  hashScheduleSide(h, srcObj, srcSet);
  const auto key = h.digest();

  std::shared_ptr<const McSchedule> local = cache_.peek(key);
  if (agreeOnHit(comm, remoteProgram, local != nullptr)) {
    cache_.noteHit(key);
    return local;
  }
  cache_.noteMiss();
  auto built = compressed(
      computeScheduleSend(comm, srcObj, srcSet, remoteProgram, method));
  cache_.insert(key, built);
  return built;
}

std::shared_ptr<const McSchedule> ScheduleCache::getOrBuildRecvByLayout(
    transport::Comm& comm, const DistObject& dstObj,
    const SetOfRegions& dstSet, int remoteProgram,
    const HashStream::Digest& remoteLayout, Method method) {
  HashStream h;
  h.str("recv_layout");
  h.pod(method);
  h.pod(comm.size());
  h.pod(comm.programInfo(remoteProgram).nprocs);
  h.pod(remoteLayout);
  hashScheduleSide(h, dstObj, dstSet);
  const auto key = h.digest();

  std::shared_ptr<const McSchedule> local = cache_.peek(key);
  if (agreeOnHit(comm, remoteProgram, local != nullptr)) {
    cache_.noteHit(key);
    return local;
  }
  cache_.noteMiss();
  auto built = compressed(
      computeScheduleRecv(comm, dstObj, dstSet, remoteProgram, method));
  cache_.insert(key, built);
  return built;
}

HashStream::Digest scheduleSideDigest(const DistObject& obj,
                                      const SetOfRegions& set) {
  HashStream h;
  h.str("side");
  hashScheduleSide(h, obj, set);
  return h.digest();
}

ScheduleCache& defaultScheduleCache() {
  thread_local ScheduleCache cache;
  // Register the singleton's counters into the rank's metrics registry the
  // first time the cache exists on this thread (same lifetime: both are
  // thread_local, and the registry never samples after thread exit).
  thread_local bool registered = [] {
    obs::registerCacheMetrics(obs::threadRegistry(), "core.sched_cache",
                              cache);
    return true;
  }();
  (void)registered;
  return cache;
}

}  // namespace mc::core
