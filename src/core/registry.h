// Registry of library adapters.
//
// Adding a new data parallel library to Meta-Chaos is exactly one call:
// register its adapter.  No other library's code changes — the
// extensibility argument of the paper's Section 3.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/adapter.h"

namespace mc::core {

class Registry {
 public:
  /// The process-wide registry (shared by all virtual processors).
  static Registry& instance();

  /// Registers `adapter` under adapter->name().  Idempotent per name:
  /// re-registering an existing name is rejected.
  void add(std::unique_ptr<LibraryAdapter> adapter);

  bool has(const std::string& name) const;
  const LibraryAdapter& get(const std::string& name) const;

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<LibraryAdapter>> adapters_;
};

/// Registers the four built-in adapters (parti, hpf, chaos, pc++) exactly
/// once per process; safe to call from every virtual processor.
void registerBuiltinAdapters();

}  // namespace mc::core
