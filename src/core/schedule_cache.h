// The Meta-Chaos schedule cache.
//
// Wraps the computeSchedule* builders behind a content-addressed cache: the
// key is a 128-bit digest of (source library + descriptor fingerprint,
// source regions, destination library + descriptor fingerprint, destination
// regions, build method, program topology).  A hit returns the previously
// built schedule — already run-compressed — without touching the library
// dereference machinery at all, which is what turns the paper's
// build-once/execute-many amortization into the default behaviour of every
// call site.
//
// Correctness of a *collective* build demands that all participating
// processors agree on hit-vs-miss: if one rank rebuilt while another used
// its cached copy, the build's collective communication would deadlock.
// Descriptor fingerprints are local (each rank hashes the state it holds —
// a distributed translation table hashes only its own shard), so agreement
// is established explicitly: every lookup AND-reduces the local hit bit
// over the program (and, for inter-program schedules, across both
// programs).  The reduction is a few tiny messages — noise next to the
// build it replaces — and a rank whose neighbours missed simply rebuilds
// with them, counting a miss.
//
// The cache is per virtual processor (each rank caches its own schedule
// halves); defaultScheduleCache() hands every rank its own instance, the
// way the MC_* API keeps per-rank handle tables.
#pragma once

#include <utility>

#include "core/schedule_builder.h"
#include "sched/schedule_cache.h"

namespace mc::core {

using sched::CacheStats;

class ScheduleCache {
 public:
  explicit ScheduleCache(std::size_t capacity = 64) : cache_(capacity) {}

  /// Cached computeSchedule (intra-program).  Collective over the program.
  std::shared_ptr<const McSchedule> getOrBuild(
      transport::Comm& comm, const DistObject& srcObj,
      const SetOfRegions& srcSet, const DistObject& dstObj,
      const SetOfRegions& dstSet, Method method = Method::kCooperation);

  /// Cached computeScheduleSend / computeScheduleRecv (inter-program
  /// halves).  Collective over both programs; the two sides must pair their
  /// calls, exactly like the uncached builders.
  std::shared_ptr<const McSchedule> getOrBuildSend(
      transport::Comm& comm, const DistObject& srcObj,
      const SetOfRegions& srcSet, int remoteProgram,
      Method method = Method::kCooperation);
  std::shared_ptr<const McSchedule> getOrBuildRecv(
      transport::Comm& comm, const DistObject& dstObj,
      const SetOfRegions& dstSet, int remoteProgram,
      Method method = Method::kCooperation);

  /// Layout-keyed inter-program halves for cross-client sharing: the key
  /// hashes the *remote side's layout fingerprint digest* instead of the
  /// remote program's identity, so the Nth client program presenting a
  /// layout some earlier client already built against hits regardless of
  /// its program id.  `remoteProgram` still names the peer for the
  /// collective hit/miss agreement and the build itself — it just does not
  /// enter the key.  Collective over both programs, paired like the
  /// identity-keyed forms.
  std::shared_ptr<const McSchedule> getOrBuildSendByLayout(
      transport::Comm& comm, const DistObject& srcObj,
      const SetOfRegions& srcSet, int remoteProgram,
      const HashStream::Digest& remoteLayout,
      Method method = Method::kCooperation);
  std::shared_ptr<const McSchedule> getOrBuildRecvByLayout(
      transport::Comm& comm, const DistObject& dstObj,
      const SetOfRegions& dstSet, int remoteProgram,
      const HashStream::Digest& remoteLayout,
      Method method = Method::kCooperation);

  /// Cached schedule across a repartitioning.  Looks up the new
  /// distributions' key AND a delta-secondary key (old key + delta
  /// fingerprint); on miss, patches the cached old schedule against `delta`
  /// instead of rebuilding from scratch when every rank holds a patchable
  /// copy, else falls back to a full collective build.  The patched entry
  /// is inserted under both keys, so a later epoch that reproduces either
  /// the same distributions or the same (old schedule, delta) pair hits
  /// without patching again.  Collective over the program.
  std::shared_ptr<const McSchedule> getOrPatch(
      transport::Comm& comm, const DistObject& oldSrcObj,
      const DistObject& newSrcObj, const SetOfRegions& srcSet,
      const DistObject& oldDstObj, const DistObject& newDstObj,
      const SetOfRegions& dstSet, const layout::DistDelta& delta,
      Method method = Method::kCooperation);

  /// Snapshot hooks (snapshot/snapshot.cc): dump every entry oldest-first
  /// (so a restore that insertEntry()s sequentially reproduces the LRU
  /// order), and insert a restored entry under its saved content key.
  /// Restored insertions count as insertions, not hits — the hit counters
  /// keep meaning "a build was avoided *during this run*".
  template <typename F>
  void forEachEntryOldestFirst(F&& fn) const {
    cache_.forEachOldestFirst(std::forward<F>(fn));
  }
  void insertEntry(const HashStream::Digest& key,
                   std::shared_ptr<const McSchedule> value) {
    cache_.insert(key, std::move(value));
  }

  const CacheStats& stats() const { return cache_.stats(); }
  /// Repartitionings served by patchSchedule vs. by a full rebuild.
  std::uint64_t patches() const { return patches_; }
  std::uint64_t patchFallbacks() const { return patchFallbacks_; }
  void resetStats() { cache_.resetStats(); }
  std::size_t size() const { return cache_.size(); }
  std::size_t capacity() const { return cache_.capacity(); }
  void setCapacity(std::size_t capacity) { cache_.setCapacity(capacity); }
  void clear() { cache_.clear(); }

 private:
  sched::KeyedCache<McSchedule> cache_;
  std::uint64_t patches_ = 0;
  std::uint64_t patchFallbacks_ = 0;
};

/// The calling virtual processor's schedule cache (one per rank/thread,
/// like the MC_* handle tables).  Lives for the lifetime of the rank's
/// thread — i.e. one World::run.
ScheduleCache& defaultScheduleCache();

/// Digest of one side of a schedule key: library name, the adapter's local
/// descriptor fingerprint, and the region set contents.  Exposed for the
/// library-level caches and tests.
void hashScheduleSide(HashStream& h, const DistObject& obj,
                      const SetOfRegions& set);

/// The side digest as a value — the "layout fingerprint" a client presents
/// to the compute server and the *ByLayout lookups key on.  Note the
/// adapter fingerprint inside is rank-local: a program canonicalizes by
/// broadcasting rank 0's digest before using it as a shared identity.
HashStream::Digest scheduleSideDigest(const DistObject& obj,
                                      const SetOfRegions& set);

}  // namespace mc::core
