// The Meta-Chaos library adapter interface.
//
// This is the contract of the paper's framework-based approach (Section 3):
// a data parallel library interoperates with every other library by
// exporting a small set of inquiry functions — enumerate the elements of a
// SetOfRegions in linearization order, dereference each to its (owner
// processor, local address), and (optionally) serialize the distribution
// descriptor so another program can reason about it.  Nothing else about
// the library is exposed; Meta-Chaos stays ignorant of how the library
// distributes its data.
#pragma once

#include <functional>
#include <memory>
#include <typeinfo>

#include "core/region.h"
#include "transport/comm.h"

namespace mc::core {

/// Type-erased handle to a library-specific distribution descriptor (e.g. a
/// PartiDesc, an HpfDist, a Chaos TranslationTable, a TulipDesc).
class DistObject {
 public:
  template <typename D>
  DistObject(std::string library, std::shared_ptr<const D> desc)
      : library_(std::move(library)),
        desc_(std::move(desc)),
        type_(&typeid(D)) {
    MC_REQUIRE(desc_ != nullptr, "null distribution descriptor");
  }

  const std::string& library() const { return library_; }

  template <typename D>
  const D& as() const {
    MC_REQUIRE(*type_ == typeid(D),
               "descriptor type mismatch for library '%s'", library_.c_str());
    return *static_cast<const D*>(desc_.get());
  }

 private:
  std::string library_;
  std::shared_ptr<const void> desc_;
  const std::type_info* type_;
};

/// One element of a linearization: its position and local offset (the owner
/// is implied by who holds the record).
struct LinLoc {
  layout::Index lin = 0;
  layout::Index offset = 0;
};

/// A run of linearization positions [lin, lin+count) with one owner, living
/// at local offsets off + k*offStride.  Regular libraries produce one run
/// per local section row; fully irregular data degrades to count-1 runs.
/// Count-1 runs carry offStride 0 (canonical form).
struct LinRun {
  layout::Index lin = 0;
  layout::Index off = 0;
  layout::Index count = 0;
  layout::Index offStride = 0;

  bool operator==(const LinRun&) const = default;
};

/// Extends `lane` with a whole run, greedily coalescing into maximal runs
/// exactly as element-by-element appends would (same greedy rule as
/// sched::compressOffsets, with the additional requirement that
/// linearization positions be contiguous).
inline void appendLinRun(std::vector<LinRun>& lane, LinRun run) {
  while (run.count > 0) {
    if (!lane.empty()) {
      LinRun& tail = lane.back();
      if (tail.lin + tail.count == run.lin) {
        if (tail.count == 1) {
          tail.offStride = run.off - tail.off;
          ++tail.count;
          ++run.lin;
          run.off += run.offStride;
          --run.count;
          continue;
        }
        if (run.off == tail.off + tail.count * tail.offStride) {
          if (run.count == 1 || run.offStride == tail.offStride) {
            tail.count += run.count;
            return;
          }
          ++tail.count;
          ++run.lin;
          run.off += run.offStride;
          --run.count;
          continue;
        }
      }
    }
    if (run.count == 1) run.offStride = 0;
    lane.push_back(run);
    return;
  }
}

/// Single-element form of appendLinRun.
inline void appendLinElement(std::vector<LinRun>& lane, layout::Index lin,
                             layout::Index off) {
  appendLinRun(lane, LinRun{lin, off, 1, 0});
}

class LibraryAdapter {
 public:
  virtual ~LibraryAdapter() = default;

  /// Registry key, e.g. "parti", "hpf", "chaos", "pc++".
  virtual std::string name() const = 0;
  /// The Region kind this library defines.
  virtual Region::Kind regionKind() const = 0;

  /// Checks that `set` is well-formed for `obj` (kind, bounds); throws
  /// mc::Error otherwise.
  virtual void validate(const DistObject& obj,
                        const SetOfRegions& set) const = 0;

  /// True when ownership of any element is computable locally from the
  /// descriptor (analytic distributions, or a replicated translation
  /// table).  Required by the *duplication* schedule method.
  virtual bool supportsLocalEnumeration(const DistObject& obj) const = 0;

  /// Enumerates the whole linearization of `set` in order, calling
  /// fn(linPos, ownerRank, localOffset) per element.  No communication;
  /// only valid when supportsLocalEnumeration(obj).
  virtual void enumerateAll(
      const DistObject& obj, const SetOfRegions& set,
      const std::function<void(layout::Index lin, int owner,
                               layout::Index offset)>& fn) const = 0;

  /// Collective over the owning program: returns the calling processor's
  /// owned elements of the linearization, sorted by position.  The default
  /// filters enumerateAll; libraries whose dereference requires
  /// communication (Chaos with a distributed translation table) override
  /// it with a partitioned collective implementation.
  virtual std::vector<LinLoc> enumerateOwned(const DistObject& obj,
                                             const SetOfRegions& set,
                                             transport::Comm& comm) const;

  /// Enumerates linearization positions [linLo, linHi) only, in order, with
  /// no communication; only valid when supportsLocalEnumeration(obj).  The
  /// default filters enumerateAll (O(set size)); adapters whose regions
  /// support random access override it with an O(linHi - linLo)
  /// implementation — this is what lets the cooperation build spread its
  /// ownership work across processors.
  virtual void enumerateRange(
      const DistObject& obj, const SetOfRegions& set, layout::Index linLo,
      layout::Index linHi,
      const std::function<void(layout::Index lin, int owner,
                               layout::Index offset)>& fn) const;

  /// Callback for run-producing enumeration: positions [lin, lin+count)
  /// are owned by `owner` at offsets off + k*offStride.  Runs arrive in
  /// linearization order and never overlap.
  using RunFn = std::function<void(layout::Index lin, int owner,
                                   layout::Index off,
                                   layout::Index count,
                                   layout::Index offStride)>;

  /// Run-producing form of enumerateOwned: the calling processor's owned
  /// elements as maximal (lin, off, count, offStride) runs, sorted by
  /// position.  Collective, like enumerateOwned.  The default shim derives
  /// runs from enumerateRangeRuns when the descriptor is locally
  /// enumerable, else coalesces enumerateOwned element-wise — so every
  /// adapter works unmodified, and regular adapters that override
  /// enumerateRangeRuns get O(runs) behaviour for free.
  virtual std::vector<LinRun> enumerateOwnedRuns(const DistObject& obj,
                                                 const SetOfRegions& set,
                                                 transport::Comm& comm) const;

  /// Run-producing form of enumerateRange: emits maximal same-owner runs
  /// covering [linLo, linHi) exactly, in order.  No communication; only
  /// valid when supportsLocalEnumeration(obj).  The default shim coalesces
  /// enumerateRange element-wise (O(linHi - linLo)); regular adapters
  /// override it with an O(runs) implementation — one callback per local
  /// section row instead of one per element.
  virtual void enumerateRangeRuns(const DistObject& obj,
                                  const SetOfRegions& set,
                                  layout::Index linLo, layout::Index linHi,
                                  const RunFn& fn) const;

  /// A cheap, communication-free content digest of the locally held
  /// descriptor state, used as the descriptor's contribution to schedule
  /// cache keys.  Analytic descriptors hash their full parameters; a
  /// library whose descriptor is itself distributed (Chaos with a
  /// distributed translation table) hashes the calling rank's shard.  Two
  /// descriptors with equal fingerprints on every rank must produce
  /// identical schedules for identical region sets.
  virtual std::uint64_t localFingerprint(const DistObject& obj) const = 0;

  /// Modeled per-element ownership-lookup cost for this descriptor (zero
  /// for closed-form distributions).  The duplication builder charges
  /// 2 x (set size / nprocs) x this cost per processor, reproducing the
  /// paper's observation that duplication "must call the Chaos dereference
  /// function twice" while cooperation calls it once.
  virtual double modeledElementDereferenceCost(const DistObject&) const {
    return 0.0;
  }

  /// Wire format for the distribution descriptor, so the *other* program
  /// can enumerate this library's data (inter-program duplication method).
  /// Collective over the owning program (a Chaos distributed table must be
  /// gathered — the expensive case the paper calls out).
  virtual std::vector<std::byte> serializeDesc(const DistObject& obj,
                                               transport::Comm& comm) const = 0;
  virtual DistObject deserializeDesc(std::span<const std::byte> bytes) const = 0;
};

}  // namespace mc::core
