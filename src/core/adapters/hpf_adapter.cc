#include "core/adapters/hpf_adapter.h"

#include <cstring>

#include "core/adapters/run_emitter.h"
#include "core/adapters/section_range.h"
#include "util/hash.h"

namespace mc::core {

using layout::Index;

void HpfAdapter::validate(const DistObject& obj,
                          const SetOfRegions& set) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  const layout::Shape& shape = dist.globalShape();
  for (const Region& r : set.regions()) {
    MC_REQUIRE(r.kind() == Region::Kind::kSection,
               "hpf regions must be array sections");
    const layout::RegularSection& s = r.asSection();
    MC_REQUIRE(s.rank == shape.rank, "section rank %d != array rank %d",
               s.rank, shape.rank);
    if (s.empty()) continue;
    for (int d = 0; d < s.rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      MC_REQUIRE(s.lo[dd] >= 0 && s.hi[dd] < shape[d],
                 "section exceeds array bounds in dimension %d", d);
    }
  }
}

void HpfAdapter::enumerateAll(
    const DistObject& obj, const SetOfRegions& set,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  Index base = 0;
  for (const Region& r : set.regions()) {
    const layout::RegularSection& s = r.asSection();
    s.forEach([&](const layout::Point& p, Index pos) {
      const int owner = dist.ownerOf(p);
      fn(base + pos, owner, dist.localOffset(owner, p));
    });
    base += s.numElements();
  }
}

void HpfAdapter::enumerateRange(
    const DistObject& obj, const SetOfRegions& set, Index linLo, Index linHi,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  forEachSectionPointInRange(set, linLo, linHi,
                             [&](Index lin, const layout::Point& p) {
                               const int owner = dist.ownerOf(p);
                               fn(lin, owner, dist.localOffset(owner, p));
                             });
}

void HpfAdapter::enumerateRangeRuns(const DistObject& obj,
                                    const SetOfRegions& set, Index linLo,
                                    Index linHi, const RunFn& fn) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  // Owners change along a section row only at last-dimension distribution
  // boundaries; local storage is row-major, so within one owner segment the
  // local offset advances by the last-dimension local-index step.
  const int L = dist.rank() - 1;
  const hpfrt::DimDist& dd = dist.dims()[static_cast<size_t>(L)];
  const Index extL = dist.globalShape()[L];
  RunEmitter emit(fn);
  Index base = 0;
  for (const Region& r : set.regions()) {
    const layout::RegularSection& s = r.asSection();
    const Index n = s.numElements();
    const Index lo = std::max(linLo, base);
    const Index hi = std::min(linHi, base + n);
    const Index cntL = s.count(L);
    const Index stL = s.stride[static_cast<size_t>(L)];
    Index lin = lo;
    while (lin < hi) {
      const Index rel = lin - base;
      layout::Point p = s.pointAt(rel);
      const Index rowEnd = std::min(hi, lin + (cntL - rel % cntL));
      while (lin < rowEnd) {
        const int owner = dist.ownerOf(p);
        const Index g = p[L];
        Index take = 1;
        Index offStride = 0;
        switch (dd.kind) {
          case hpfrt::DistKind::kBlock: {
            const Index block = (extL + dd.procs - 1) / dd.procs;
            const Index blkHi = std::min(extL, block * (g / block + 1)) - 1;
            take = std::min(rowEnd - lin, (blkHi - g) / stL + 1);
            offStride = stL;  // local index is g - block*coord
            break;
          }
          case hpfrt::DistKind::kCyclic:
            // Same owner every stride steps only when the stride is a
            // multiple of the grid extent; the local index g/P then
            // advances by exactly stride/P.
            if (stL % dd.procs == 0) {
              take = rowEnd - lin;
              offStride = stL / dd.procs;
            }
            break;
          case hpfrt::DistKind::kBlockCyclic: {
            const Index k = dd.param;
            take = std::min(rowEnd - lin, (k - 1 - g % k) / stL + 1);
            offStride = stL;  // within one k-block, local index moves by g%k
            break;
          }
        }
        emit.add(lin, owner, dist.localOffset(owner, p), take, offStride);
        lin += take;
        p[L] += take * stL;
      }
    }
    base += n;
    if (base >= linHi) break;
  }
  emit.flush();
}

std::uint64_t HpfAdapter::localFingerprint(const DistObject& obj) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  const layout::Shape& shape = dist.globalShape();
  HashStream h;
  h.pod(shape.rank);
  for (int d = 0; d < shape.rank; ++d) h.pod(shape[d]);
  for (const hpfrt::DimDist& dd : dist.dims()) {
    h.pod(static_cast<int>(dd.kind));
    h.pod(dd.procs);
    h.pod(dd.param);
  }
  return h.digest()[0];
}

std::vector<std::byte> HpfAdapter::serializeDesc(const DistObject& obj,
                                                 transport::Comm&) const {
  const auto& dist = obj.as<hpfrt::HpfDist>();
  const layout::Shape& shape = dist.globalShape();
  std::vector<Index> words;
  words.push_back(shape.rank);
  for (int d = 0; d < shape.rank; ++d) words.push_back(shape[d]);
  for (const hpfrt::DimDist& dd : dist.dims()) {
    words.push_back(static_cast<Index>(dd.kind));
    words.push_back(dd.procs);
    words.push_back(dd.param);
  }
  std::vector<std::byte> out(words.size() * sizeof(Index));
  std::memcpy(out.data(), words.data(), out.size());
  return out;
}

DistObject HpfAdapter::deserializeDesc(
    std::span<const std::byte> bytes) const {
  MC_REQUIRE(bytes.size() % sizeof(Index) == 0, "bad hpf descriptor");
  std::vector<Index> words(bytes.size() / sizeof(Index));
  std::memcpy(words.data(), bytes.data(), bytes.size());
  size_t pos = 0;
  const int rank = static_cast<int>(words.at(pos++));
  MC_REQUIRE(rank >= 1 && rank <= layout::kMaxRank, "bad hpf descriptor");
  MC_REQUIRE(words.size() == 1 + 4 * static_cast<size_t>(rank),
             "bad hpf descriptor");
  layout::Shape shape;
  shape.rank = rank;
  for (int d = 0; d < rank; ++d) shape[d] = words.at(pos++);
  std::vector<hpfrt::DimDist> dims;
  for (int d = 0; d < rank; ++d) {
    hpfrt::DimDist dd;
    dd.kind = static_cast<hpfrt::DistKind>(words.at(pos++));
    dd.procs = static_cast<int>(words.at(pos++));
    dd.param = words.at(pos++);
    dims.push_back(dd);
  }
  auto desc = std::make_shared<const hpfrt::HpfDist>(shape, std::move(dims));
  return DistObject("hpf", std::move(desc));
}

}  // namespace mc::core
