// Meta-Chaos adapter for the HPF runtime library.
//
// Region type: a regular array section (HPF array subsections, exactly the
// paper's CreateRegion_HPF example); linearization: row-major over the
// section.  All three HPF distribution patterns are closed-form, so local
// enumeration always works and descriptors are tiny.
#pragma once

#include "core/adapter.h"
#include "hpfrt/hpf_array.h"

namespace mc::core {

class HpfAdapter final : public LibraryAdapter {
 public:
  std::string name() const override { return "hpf"; }
  Region::Kind regionKind() const override { return Region::Kind::kSection; }
  void validate(const DistObject& obj, const SetOfRegions& set) const override;
  bool supportsLocalEnumeration(const DistObject&) const override {
    return true;
  }
  void enumerateAll(const DistObject& obj, const SetOfRegions& set,
                    const std::function<void(layout::Index, int,
                                             layout::Index)>& fn) const override;
  void enumerateRange(const DistObject& obj, const SetOfRegions& set,
                      layout::Index linLo, layout::Index linHi,
                      const std::function<void(layout::Index, int,
                                               layout::Index)>& fn)
      const override;
  /// O(runs): splits section rows along the last dimension at the
  /// closed-form BLOCK / CYCLIC / CYCLIC(k) ownership boundaries.
  void enumerateRangeRuns(const DistObject& obj, const SetOfRegions& set,
                          layout::Index linLo, layout::Index linHi,
                          const RunFn& fn) const override;
  std::uint64_t localFingerprint(const DistObject& obj) const override;
  std::vector<std::byte> serializeDesc(const DistObject& obj,
                                       transport::Comm& comm) const override;
  DistObject deserializeDesc(std::span<const std::byte> bytes) const override;

  template <typename T>
  static DistObject describe(const hpfrt::HpfArray<T>& array) {
    return DistObject("hpf",
                      std::make_shared<const hpfrt::HpfDist>(array.dist()));
  }
};

}  // namespace mc::core
