// Meta-Chaos adapter for the pC++/Tulip runtime.
//
// Region type: a range of collection element indices; linearization:
// ascending element order within the range.  The paper reports that the
// pC++ group wrote this adapter "in a few days"; accordingly it is the
// smallest of the four.
#pragma once

#include "core/adapter.h"
#include "tulip/collection.h"

namespace mc::core {

class TulipAdapter final : public LibraryAdapter {
 public:
  std::string name() const override { return "pc++"; }
  Region::Kind regionKind() const override { return Region::Kind::kRange; }
  void validate(const DistObject& obj, const SetOfRegions& set) const override;
  bool supportsLocalEnumeration(const DistObject&) const override {
    return true;
  }
  void enumerateAll(const DistObject& obj, const SetOfRegions& set,
                    const std::function<void(layout::Index, int,
                                             layout::Index)>& fn) const override;
  void enumerateRange(const DistObject& obj, const SetOfRegions& set,
                      layout::Index linLo, layout::Index linHi,
                      const std::function<void(layout::Index, int,
                                               layout::Index)>& fn)
      const override;
  /// O(runs): one callback per ownership block of each element range.
  void enumerateRangeRuns(const DistObject& obj, const SetOfRegions& set,
                          layout::Index linLo, layout::Index linHi,
                          const RunFn& fn) const override;
  std::uint64_t localFingerprint(const DistObject& obj) const override;
  std::vector<std::byte> serializeDesc(const DistObject& obj,
                                       transport::Comm& comm) const override;
  DistObject deserializeDesc(std::span<const std::byte> bytes) const override;

  template <typename T>
  static DistObject describe(const tulip::Collection<T>& coll) {
    return DistObject("pc++",
                      std::make_shared<const tulip::TulipDesc>(coll.desc()));
  }
};

}  // namespace mc::core
