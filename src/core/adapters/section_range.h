// Random access into the linearization of a section-region set: visits
// positions [linLo, linHi) in O(linHi - linLo) using RegularSection::pointAt
// rather than walking the whole set.  Shared by the regular-library
// adapters (Parti, HPF).
#pragma once

#include <functional>

#include "core/region.h"

namespace mc::core {

template <typename F>
void forEachSectionPointInRange(const SetOfRegions& set, layout::Index linLo,
                                layout::Index linHi, F&& fn) {
  layout::Index base = 0;
  for (const Region& r : set.regions()) {
    const layout::RegularSection& s = r.asSection();
    const layout::Index n = s.numElements();
    const layout::Index lo = std::max(linLo, base);
    const layout::Index hi = std::min(linHi, base + n);
    for (layout::Index lin = lo; lin < hi; ++lin) {
      fn(lin, s.pointAt(lin - base));
    }
    base += n;
    if (base >= linHi) break;
  }
}

}  // namespace mc::core
