// Meta-Chaos adapter for the Multiblock Parti library.
//
// Region type: a regular array section; linearization: row-major over the
// section's index tuples.  Ownership is closed-form from the block
// decomposition, so both full local enumeration (duplication) and the
// default owned-filter (cooperation) work without communication, and the
// descriptor serializes to a few dozen bytes.
#pragma once

#include "core/adapter.h"
#include "parti/dist_array.h"

namespace mc::core {

class PartiAdapter final : public LibraryAdapter {
 public:
  std::string name() const override { return "parti"; }
  Region::Kind regionKind() const override { return Region::Kind::kSection; }
  void validate(const DistObject& obj, const SetOfRegions& set) const override;
  bool supportsLocalEnumeration(const DistObject&) const override {
    return true;
  }
  void enumerateAll(const DistObject& obj, const SetOfRegions& set,
                    const std::function<void(layout::Index, int,
                                             layout::Index)>& fn) const override;
  void enumerateRange(const DistObject& obj, const SetOfRegions& set,
                      layout::Index linLo, layout::Index linHi,
                      const std::function<void(layout::Index, int,
                                               layout::Index)>& fn)
      const override;
  /// O(runs): one callback per (section row x owner block) segment, split
  /// along the last dimension with the closed-form block boundaries.
  void enumerateRangeRuns(const DistObject& obj, const SetOfRegions& set,
                          layout::Index linLo, layout::Index linHi,
                          const RunFn& fn) const override;
  std::uint64_t localFingerprint(const DistObject& obj) const override;
  std::vector<std::byte> serializeDesc(const DistObject& obj,
                                       transport::Comm& comm) const override;
  DistObject deserializeDesc(std::span<const std::byte> bytes) const override;

  /// Convenience: wraps a Parti array's descriptor as a DistObject.
  template <typename T>
  static DistObject describe(const parti::BlockDistArray<T>& array) {
    return DistObject("parti",
                      std::make_shared<const parti::PartiDesc>(array.desc()));
  }
};

}  // namespace mc::core
