#include "core/adapters/parti_adapter.h"

#include <cstring>

#include "core/adapters/run_emitter.h"
#include "core/adapters/section_range.h"
#include "util/hash.h"

namespace mc::core {

using layout::Index;

void PartiAdapter::validate(const DistObject& obj,
                            const SetOfRegions& set) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  const layout::Shape& shape = desc.decomp.globalShape();
  for (const Region& r : set.regions()) {
    MC_REQUIRE(r.kind() == Region::Kind::kSection,
               "parti regions must be array sections");
    const layout::RegularSection& s = r.asSection();
    MC_REQUIRE(s.rank == shape.rank, "section rank %d != array rank %d",
               s.rank, shape.rank);
    if (s.empty()) continue;
    for (int d = 0; d < s.rank; ++d) {
      const auto dd = static_cast<size_t>(d);
      MC_REQUIRE(s.lo[dd] >= 0 && s.hi[dd] < shape[d],
                 "section exceeds array bounds in dimension %d", d);
    }
  }
}

void PartiAdapter::enumerateAll(
    const DistObject& obj, const SetOfRegions& set,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  // Per-processor addressing snapshots: one table lookup per element
  // instead of re-deriving the owned box every time.
  std::vector<parti::PartiAddr> addr;
  addr.reserve(static_cast<size_t>(desc.decomp.nprocs()));
  for (int proc = 0; proc < desc.decomp.nprocs(); ++proc) {
    addr.push_back(desc.addrOf(proc));
  }
  Index base = 0;
  for (const Region& r : set.regions()) {
    const layout::RegularSection& s = r.asSection();
    s.forEach([&](const layout::Point& p, Index pos) {
      const int owner = desc.decomp.ownerOf(p);
      fn(base + pos, owner, addr[static_cast<size_t>(owner)].offsetOf(p));
    });
    base += s.numElements();
  }
}

void PartiAdapter::enumerateRange(
    const DistObject& obj, const SetOfRegions& set, Index linLo, Index linHi,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  std::vector<parti::PartiAddr> addr;
  addr.reserve(static_cast<size_t>(desc.decomp.nprocs()));
  for (int proc = 0; proc < desc.decomp.nprocs(); ++proc) {
    addr.push_back(desc.addrOf(proc));
  }
  forEachSectionPointInRange(set, linLo, linHi,
                             [&](Index lin, const layout::Point& p) {
                               const int owner = desc.decomp.ownerOf(p);
                               fn(lin, owner,
                                  addr[static_cast<size_t>(owner)].offsetOf(p));
                             });
}

void PartiAdapter::enumerateRangeRuns(const DistObject& obj,
                                      const SetOfRegions& set, Index linLo,
                                      Index linHi, const RunFn& fn) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  const layout::BlockDecomp& dec = desc.decomp;
  std::vector<parti::PartiAddr> addr;
  addr.reserve(static_cast<size_t>(dec.nprocs()));
  for (int proc = 0; proc < dec.nprocs(); ++proc) {
    addr.push_back(desc.addrOf(proc));
  }
  // Owners change along a section row only at last-dimension block
  // boundaries, and local offsets advance by the section stride there (the
  // padded storage is row-major, last dimension innermost) — so each row
  // yields one run per owner block instead of one callback per element.
  const int L = dec.rank() - 1;
  const Index extL = dec.globalShape()[L];
  const Index blockL =
      (extL + dec.grid()[static_cast<size_t>(L)] - 1) /
      dec.grid()[static_cast<size_t>(L)];
  RunEmitter emit(fn);
  Index base = 0;
  for (const Region& r : set.regions()) {
    const layout::RegularSection& s = r.asSection();
    const Index n = s.numElements();
    const Index lo = std::max(linLo, base);
    const Index hi = std::min(linHi, base + n);
    const Index cntL = s.count(L);
    const Index stL = s.stride[static_cast<size_t>(L)];
    Index lin = lo;
    while (lin < hi) {
      const Index rel = lin - base;
      layout::Point p = s.pointAt(rel);
      const Index rowEnd = std::min(hi, lin + (cntL - rel % cntL));
      while (lin < rowEnd) {
        const int owner = dec.ownerOf(p);
        const Index blkHi = std::min(extL, blockL * (p[L] / blockL + 1)) - 1;
        const Index take = std::min(rowEnd - lin, (blkHi - p[L]) / stL + 1);
        emit.add(lin, owner, addr[static_cast<size_t>(owner)].offsetOf(p), take,
                 stL);
        lin += take;
        p[L] += take * stL;
      }
    }
    base += n;
    if (base >= linHi) break;
  }
  emit.flush();
}

std::uint64_t PartiAdapter::localFingerprint(const DistObject& obj) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  const layout::Shape& shape = desc.decomp.globalShape();
  HashStream h;
  h.pod(shape.rank);
  for (int d = 0; d < shape.rank; ++d) h.pod(shape[d]);
  for (int g : desc.decomp.grid()) h.pod(g);
  h.pod(desc.ghost);
  return h.digest()[0];
}

std::vector<std::byte> PartiAdapter::serializeDesc(const DistObject& obj,
                                                   transport::Comm&) const {
  const auto& desc = obj.as<parti::PartiDesc>();
  const layout::Shape& shape = desc.decomp.globalShape();
  std::vector<Index> words;
  words.push_back(shape.rank);
  for (int d = 0; d < shape.rank; ++d) words.push_back(shape[d]);
  for (int g : desc.decomp.grid()) words.push_back(g);
  words.push_back(desc.ghost);
  std::vector<std::byte> out(words.size() * sizeof(Index));
  std::memcpy(out.data(), words.data(), out.size());
  return out;
}

DistObject PartiAdapter::deserializeDesc(
    std::span<const std::byte> bytes) const {
  MC_REQUIRE(bytes.size() % sizeof(Index) == 0, "bad parti descriptor");
  std::vector<Index> words(bytes.size() / sizeof(Index));
  std::memcpy(words.data(), bytes.data(), bytes.size());
  size_t pos = 0;
  const int rank = static_cast<int>(words.at(pos++));
  MC_REQUIRE(rank >= 1 && rank <= layout::kMaxRank, "bad parti descriptor");
  MC_REQUIRE(words.size() == 2 + 2 * static_cast<size_t>(rank),
             "bad parti descriptor");
  layout::Shape shape;
  shape.rank = rank;
  for (int d = 0; d < rank; ++d) shape[d] = words.at(pos++);
  std::vector<int> grid;
  for (int d = 0; d < rank; ++d) grid.push_back(static_cast<int>(words.at(pos++)));
  const int ghost = static_cast<int>(words.at(pos++));
  auto desc = std::make_shared<const parti::PartiDesc>(
      parti::PartiDesc{layout::BlockDecomp(shape, grid), ghost});
  return DistObject("parti", std::move(desc));
}

}  // namespace mc::core
