#include "core/adapters/chaos_adapter.h"

#include <cstring>

#include "core/schedule_builder.h"

namespace mc::core {

using chaos::ElementLoc;
using chaos::TranslationTable;
using layout::Index;

void ChaosAdapter::validate(const DistObject& obj,
                            const SetOfRegions& set) const {
  const auto& table = obj.as<TranslationTable>();
  for (const Region& r : set.regions()) {
    MC_REQUIRE(r.kind() == Region::Kind::kIndices,
               "chaos regions must be index sets");
    for (Index g : r.asIndices()) {
      MC_REQUIRE(g >= 0 && g < table.globalSize(),
                 "index %lld exceeds array size %lld",
                 static_cast<long long>(g),
                 static_cast<long long>(table.globalSize()));
    }
  }
}

bool ChaosAdapter::supportsLocalEnumeration(const DistObject& obj) const {
  return obj.as<TranslationTable>().storage() ==
         TranslationTable::Storage::kReplicated;
}

void ChaosAdapter::enumerateAll(
    const DistObject& obj, const SetOfRegions& set,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& table = obj.as<TranslationTable>();
  MC_REQUIRE(table.storage() == TranslationTable::Storage::kReplicated,
             "a distributed translation table cannot be enumerated locally; "
             "use the cooperation method or replicate the table");
  Index base = 0;
  for (const Region& r : set.regions()) {
    const auto& idx = r.asIndices();
    for (size_t k = 0; k < idx.size(); ++k) {
      const ElementLoc loc = table.dereferenceLocal(idx[k]);
      fn(base + static_cast<Index>(k), loc.proc, loc.offset);
    }
    base += static_cast<Index>(idx.size());
  }
}

void ChaosAdapter::enumerateRange(
    const DistObject& obj, const SetOfRegions& set, Index linLo, Index linHi,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& table = obj.as<TranslationTable>();
  MC_REQUIRE(table.storage() == TranslationTable::Storage::kReplicated,
             "a distributed translation table cannot be enumerated locally");
  Index base = 0;
  for (const Region& r : set.regions()) {
    const auto& idx = r.asIndices();
    const Index n = static_cast<Index>(idx.size());
    const Index lo = std::max(linLo, base);
    const Index hi = std::min(linHi, base + n);
    for (Index lin = lo; lin < hi; ++lin) {
      const ElementLoc loc =
          table.dereferenceLocal(idx[static_cast<size_t>(lin - base)]);
      fn(lin, loc.proc, loc.offset);
    }
    base += n;
    if (base >= linHi) break;
  }
}

std::vector<LinLoc> ChaosAdapter::enumerateOwned(const DistObject& obj,
                                                 const SetOfRegions& set,
                                                 transport::Comm& comm) const {
  const auto& table = obj.as<TranslationTable>();
  const int np = comm.size();
  const int me = comm.rank();
  const Index n = set.numElements();
  // Each processor dereferences a contiguous slice of the linearization —
  // this is how the cooperation method spreads the dereference cost over
  // the program's processors.
  const Index chunk = np > 0 ? (n + np - 1) / np : n;
  const Index lo = chunk * me;
  const Index hi = std::min(n, lo + chunk);

  std::vector<Index> sliceGlobals;
  sliceGlobals.reserve(static_cast<size_t>(std::max<Index>(0, hi - lo)));
  Index base = 0;
  for (const Region& r : set.regions()) {
    const auto& idx = r.asIndices();
    const Index rn = static_cast<Index>(idx.size());
    const Index rLo = std::max(lo, base);
    const Index rHi = std::min(hi, base + rn);
    for (Index p = rLo; p < rHi; ++p) {
      sliceGlobals.push_back(idx[static_cast<size_t>(p - base)]);
    }
    base += rn;
  }

  // The production path resolves its slice through the batched per-rank
  // dereference cache; the element-wise oracle pipeline keeps the uncached
  // per-element dereference so the differential benches compare the real
  // inspector costs.
  const std::vector<ElementLoc> locs =
      testing::buildElementwiseEnabled()
          ? table.dereference(comm, sliceGlobals)
          : table.dereferenceCached(comm, sliceGlobals);

  // Route (lin, offset) to each element's owner.
  struct Rec {
    Index lin;
    Index offset;
  };
  std::vector<std::vector<Rec>> toOwner(static_cast<size_t>(np));
  for (size_t k = 0; k < locs.size(); ++k) {
    toOwner[static_cast<size_t>(locs[k].proc)].push_back(
        Rec{lo + static_cast<Index>(k), locs[k].offset});
  }
  auto rows = comm.alltoall(toOwner);
  std::vector<LinLoc> out;
  // Slices are position-ordered, so concatenating rows in sender order
  // yields... records from sender s cover slice s; within a slice they are
  // ascending.  Senders are visited 0..np-1, and slice s's positions all
  // precede slice s+1's, so the concatenation is globally sorted by lin.
  for (const auto& row : rows) {
    for (const Rec& rec : row) out.push_back(LinLoc{rec.lin, rec.offset});
  }
  return out;
}

double ChaosAdapter::modeledElementDereferenceCost(
    const DistObject& obj) const {
  return obj.as<TranslationTable>().modeledQueryCost();
}

std::uint64_t ChaosAdapter::localFingerprint(const DistObject& obj) const {
  // A distributed table cannot be fingerprinted whole without
  // communication; hashing the local shard is exactly what the cache's
  // collective hit agreement expects (any rank seeing a different shard
  // forces a program-wide miss).
  return obj.as<TranslationTable>().localFingerprint();
}

std::vector<std::byte> ChaosAdapter::serializeDesc(
    const DistObject& obj, transport::Comm& comm) const {
  const auto& table = obj.as<TranslationTable>();
  // Shipping a Chaos descriptor means shipping the whole table — the
  // O(array size) cost that makes inter-program duplication impractical.
  const std::vector<ElementLoc> full = table.gatherFull(comm);
  constexpr size_t kHeader = sizeof(Index) + sizeof(double);
  std::vector<std::byte> out(kHeader + full.size() * sizeof(ElementLoc));
  const Index nprocs = comm.size();
  const double cost = table.modeledQueryCost();
  std::memcpy(out.data(), &nprocs, sizeof(Index));
  std::memcpy(out.data() + sizeof(Index), &cost, sizeof(double));
  std::memcpy(out.data() + kHeader, full.data(),
              full.size() * sizeof(ElementLoc));
  return out;
}

DistObject ChaosAdapter::deserializeDesc(
    std::span<const std::byte> bytes) const {
  constexpr size_t kHeader = sizeof(Index) + sizeof(double);
  MC_REQUIRE(bytes.size() >= kHeader &&
                 (bytes.size() - kHeader) % sizeof(ElementLoc) == 0,
             "bad chaos descriptor");
  Index nprocs = 0;
  double cost = 0;
  std::memcpy(&nprocs, bytes.data(), sizeof(Index));
  std::memcpy(&cost, bytes.data() + sizeof(Index), sizeof(double));
  std::vector<ElementLoc> entries((bytes.size() - kHeader) /
                                  sizeof(ElementLoc));
  std::memcpy(entries.data(), bytes.data() + kHeader,
              bytes.size() - kHeader);
  auto table = std::make_shared<const TranslationTable>(
      TranslationTable::replicatedFromEntries(
          std::move(entries), static_cast<int>(nprocs), cost));
  return DistObject("chaos", std::move(table));
}

}  // namespace mc::core
