// Meta-Chaos adapter for the Chaos library.
//
// Region type: an explicit set of global array indices; linearization: the
// listed order.  Ownership lives in the translation table, which makes this
// the *expensive* adapter — the costs the paper's Tables 1-4 revolve
// around:
//
//  * with a distributed table, ownership queries require communication, so
//    enumerateOwned is overridden with a partitioned collective: each
//    processor dereferences its slice of the linearization and routes the
//    results to the owners (this is why the paper's two-program schedule
//    times drop almost linearly with more Chaos-side processors, Table 3);
//  * full local enumeration (the duplication method) needs the whole table:
//    possible only when it is replicated, and serializing the descriptor
//    ships O(array size) data — the reason the paper calls duplication
//    impractical for Chaos data across programs.
#pragma once

#include "chaos/irreg_array.h"
#include "core/adapter.h"

namespace mc::core {

class ChaosAdapter final : public LibraryAdapter {
 public:
  std::string name() const override { return "chaos"; }
  Region::Kind regionKind() const override { return Region::Kind::kIndices; }
  void validate(const DistObject& obj, const SetOfRegions& set) const override;
  bool supportsLocalEnumeration(const DistObject& obj) const override;
  void enumerateAll(const DistObject& obj, const SetOfRegions& set,
                    const std::function<void(layout::Index, int,
                                             layout::Index)>& fn) const override;
  std::vector<LinLoc> enumerateOwned(const DistObject& obj,
                                     const SetOfRegions& set,
                                     transport::Comm& comm) const override;
  void enumerateRange(const DistObject& obj, const SetOfRegions& set,
                      layout::Index linLo, layout::Index linHi,
                      const std::function<void(layout::Index, int,
                                               layout::Index)>& fn)
      const override;
  double modeledElementDereferenceCost(const DistObject& obj) const override;
  std::uint64_t localFingerprint(const DistObject& obj) const override;
  std::vector<std::byte> serializeDesc(const DistObject& obj,
                                       transport::Comm& comm) const override;
  DistObject deserializeDesc(std::span<const std::byte> bytes) const override;

  template <typename T>
  static DistObject describe(const chaos::IrregArray<T>& array) {
    return DistObject("chaos", array.tablePtr());
  }
};

}  // namespace mc::core
