// Coalescing emitter for adapter run enumeration.
//
// Adapters that override LibraryAdapter::enumerateRangeRuns produce one
// candidate run per (section row x ownership block) segment.  Those
// segments are already maximal in the common case, but can be mergeable
// across row or region boundaries (e.g. a whole-array section on one
// processor is a single arithmetic run).  RunEmitter buffers the most
// recent run and merges in-order additions under exactly the greedy rule of
// appendLinRun — same owner, contiguous linearization positions, exact
// offset-progression continuation — so the stream it forwards to the RunFn
// is identical no matter how the adapter cut its segments.
#pragma once

#include "core/adapter.h"

namespace mc::core {

class RunEmitter {
 public:
  explicit RunEmitter(const LibraryAdapter::RunFn& fn) : fn_(fn) {}

  /// Adds positions [lin, lin+count) owned by `owner` at offsets
  /// off + k*offStride.  Additions must arrive in linearization order.
  void add(layout::Index lin, int owner, layout::Index off,
           layout::Index count, layout::Index offStride) {
    while (count > 0) {
      if (open_ && owner == curOwner_ && cur_.lin + cur_.count == lin) {
        if (cur_.count == 1) {
          cur_.offStride = off - cur_.off;
          ++cur_.count;
          ++lin;
          off += offStride;
          --count;
          continue;
        }
        if (off == cur_.off + cur_.count * cur_.offStride) {
          if (count == 1 || offStride == cur_.offStride) {
            cur_.count += count;
            return;
          }
          ++cur_.count;
          ++lin;
          off += offStride;
          --count;
          continue;
        }
      }
      if (open_) fn_(cur_.lin, curOwner_, cur_.off, cur_.count, cur_.offStride);
      cur_ = LinRun{lin, off, count, count == 1 ? 0 : offStride};
      curOwner_ = owner;
      open_ = true;
      return;
    }
  }

  /// Emits the buffered run; call once after the last add().
  void flush() {
    if (open_) fn_(cur_.lin, curOwner_, cur_.off, cur_.count, cur_.offStride);
    open_ = false;
  }

 private:
  const LibraryAdapter::RunFn& fn_;
  LinRun cur_;
  int curOwner_ = -1;
  bool open_ = false;
};

}  // namespace mc::core
