#include "core/adapters/tulip_adapter.h"

#include <cstring>

#include "core/adapters/run_emitter.h"
#include "util/hash.h"

namespace mc::core {

using layout::Index;

void TulipAdapter::validate(const DistObject& obj,
                            const SetOfRegions& set) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  for (const Region& r : set.regions()) {
    MC_REQUIRE(r.kind() == Region::Kind::kRange,
               "pc++ regions must be element ranges");
    const ElementRange& e = r.asRange();
    if (e.numElements() == 0) continue;
    MC_REQUIRE(e.lo >= 0 && e.hi < desc.size,
               "range [%lld, %lld] exceeds collection size %lld",
               static_cast<long long>(e.lo), static_cast<long long>(e.hi),
               static_cast<long long>(desc.size));
  }
}

void TulipAdapter::enumerateAll(
    const DistObject& obj, const SetOfRegions& set,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  Index base = 0;
  for (const Region& r : set.regions()) {
    const ElementRange& e = r.asRange();
    const Index n = e.numElements();
    for (Index k = 0; k < n; ++k) {
      const Index g = e.at(k);
      fn(base + k, desc.ownerOf(g), desc.localOffsetOf(g));
    }
    base += n;
  }
}

void TulipAdapter::enumerateRange(
    const DistObject& obj, const SetOfRegions& set, Index linLo, Index linHi,
    const std::function<void(Index, int, Index)>& fn) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  Index base = 0;
  for (const Region& r : set.regions()) {
    const ElementRange& e = r.asRange();
    const Index n = e.numElements();
    const Index lo = std::max(linLo, base);
    const Index hi = std::min(linHi, base + n);
    for (Index lin = lo; lin < hi; ++lin) {
      const Index g = e.at(lin - base);
      fn(lin, desc.ownerOf(g), desc.localOffsetOf(g));
    }
    base += n;
    if (base >= linHi) break;
  }
}

void TulipAdapter::enumerateRangeRuns(const DistObject& obj,
                                      const SetOfRegions& set, Index linLo,
                                      Index linHi, const RunFn& fn) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  RunEmitter emit(fn);
  Index base = 0;
  for (const Region& r : set.regions()) {
    const ElementRange& e = r.asRange();
    const Index n = e.numElements();
    const Index lo = std::max(linLo, base);
    const Index hi = std::min(linHi, base + n);
    Index lin = lo;
    while (lin < hi) {
      const Index g = e.at(lin - base);
      const int owner = desc.ownerOf(g);
      Index take = 1;
      Index offStride = 0;
      if (desc.placement == tulip::Placement::kBlock) {
        const Index block = (desc.size + desc.nprocs - 1) / desc.nprocs;
        const Index blkHi = std::min(desc.size, block * (g / block + 1)) - 1;
        take = std::min(hi - lin, (blkHi - g) / e.stride + 1);
        offStride = e.stride;  // local index is g - block*owner
      } else if (e.stride % desc.nprocs == 0) {
        // CYCLIC: owner fixed across the whole range when the range stride
        // is a multiple of the processor count; local index g/P advances by
        // stride/P.
        take = hi - lin;
        offStride = e.stride / desc.nprocs;
      }
      emit.add(lin, owner, desc.localOffsetOf(g), take, offStride);
      lin += take;
    }
    base += n;
    if (base >= linHi) break;
  }
  emit.flush();
}

std::uint64_t TulipAdapter::localFingerprint(const DistObject& obj) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  HashStream h;
  h.pod(desc.size);
  h.pod(desc.nprocs);
  h.pod(static_cast<int>(desc.placement));
  return h.digest()[0];
}

std::vector<std::byte> TulipAdapter::serializeDesc(const DistObject& obj,
                                                   transport::Comm&) const {
  const auto& desc = obj.as<tulip::TulipDesc>();
  const Index words[3] = {desc.size, desc.nprocs,
                          static_cast<Index>(desc.placement)};
  std::vector<std::byte> out(sizeof(words));
  std::memcpy(out.data(), words, sizeof(words));
  return out;
}

DistObject TulipAdapter::deserializeDesc(
    std::span<const std::byte> bytes) const {
  MC_REQUIRE(bytes.size() == 3 * sizeof(Index), "bad pc++ descriptor");
  Index words[3];
  std::memcpy(words, bytes.data(), sizeof(words));
  auto desc = std::make_shared<const tulip::TulipDesc>(
      tulip::TulipDesc{words[0], static_cast<int>(words[1]),
                       static_cast<tulip::Placement>(words[2])});
  return DistObject("pc++", std::move(desc));
}

}  // namespace mc::core
