// The Meta-Chaos applications-programmer interface (paper Section 4.2 and
// the Figure 9 example).
//
// This facade mirrors the paper's handle-based C-style API on top of the
// C++ core.  Handles are per-virtual-processor (each SPMD rank builds its
// own, in the same collective order), matching the original library's SPMD
// usage:
//
//   regionId = CreateRegion_HPF(2, Rleft, Rright);
//   setId    = MC_NewSetOfRegion();
//   MC_AddRegion2Set(regionId, setId);
//   schedId  = MC_ComputeSchedSend(comm, objId, setId, remoteProgram);
//   MC_DataMoveSend<double>(comm, schedId, data);
//
// The four CreateRegion_* functions stand for the constructors the paper
// says each data parallel library's implementor provides.
#pragma once

#include "core/adapters/chaos_adapter.h"
#include "core/adapters/hpf_adapter.h"
#include "core/adapters/parti_adapter.h"
#include "core/adapters/tulip_adapter.h"
#include "core/data_move.h"
#include "core/schedule_cache.h"

namespace mc::api {

using RegionId = int;
using SetId = int;
using ObjectId = int;
using SchedId = int;

// --- region constructors (one per library, as in the paper) ---------------

/// HPF / Multiblock Parti: a regular array section lo:hi:stride per dim
/// (hi inclusive; stride defaults to 1 when null).
RegionId CreateRegion_HPF(int ndims, const layout::Index* lo,
                          const layout::Index* hi,
                          const layout::Index* stride = nullptr);
RegionId CreateRegion_Parti(int ndims, const layout::Index* lo,
                            const layout::Index* hi,
                            const layout::Index* stride = nullptr);
/// Chaos: an explicit set of global indices, in linearization order.
RegionId CreateRegion_Chaos(const layout::Index* indices, layout::Index count);
/// pC++: a range of collection elements.
RegionId CreateRegion_PCXX(layout::Index lo, layout::Index hi,
                           layout::Index stride = 1);

// --- sets -------------------------------------------------------------------

SetId MC_NewSetOfRegion();
void MC_AddRegion2Set(RegionId region, SetId set);

// --- distributed objects ------------------------------------------------------

/// Registers a distribution descriptor under a handle.
ObjectId MC_RegisterObject(core::DistObject obj);

template <typename T>
ObjectId MC_RegisterParti(const parti::BlockDistArray<T>& a) {
  return MC_RegisterObject(core::PartiAdapter::describe(a));
}
template <typename T>
ObjectId MC_RegisterHPF(const hpfrt::HpfArray<T>& a) {
  return MC_RegisterObject(core::HpfAdapter::describe(a));
}
template <typename T>
ObjectId MC_RegisterChaos(const chaos::IrregArray<T>& a) {
  return MC_RegisterObject(core::ChaosAdapter::describe(a));
}
template <typename T>
ObjectId MC_RegisterPCXX(const tulip::Collection<T>& c) {
  return MC_RegisterObject(core::TulipAdapter::describe(c));
}

// --- schedules ----------------------------------------------------------------

/// Intra-program schedule (both objects in the calling program); collective.
/// Served from the rank's schedule cache when an identical schedule was
/// built before (MC_SchedCacheStats observes hits/misses); the handle is
/// fresh either way.
SchedId MC_ComputeSched(transport::Comm& comm, ObjectId srcObj, SetId srcSet,
                        ObjectId dstObj, SetId dstSet,
                        core::Method method = core::Method::kCooperation);
/// Inter-program halves; collective across both programs.
SchedId MC_ComputeSchedSend(transport::Comm& comm, ObjectId srcObj,
                            SetId srcSet, int remoteProgram,
                            core::Method method = core::Method::kCooperation);
SchedId MC_ComputeSchedRecv(transport::Comm& comm, ObjectId dstObj,
                            SetId dstSet, int remoteProgram,
                            core::Method method = core::Method::kCooperation);
/// A new handle for the reversed schedule (paper: schedules are symmetric).
SchedId MC_ReverseSched(SchedId sched);

/// Access to the underlying schedule (for inspection / tests).
const core::McSchedule& MC_GetSched(SchedId sched);

// --- schedule cache observability -----------------------------------------

/// Counters of the calling rank's schedule cache (hits / misses /
/// insertions / evictions), the analogue of transport::Comm::stats().
const core::CacheStats& MC_SchedCacheStats();
/// Zeroes the counters (entries stay cached).
void MC_SchedCacheResetStats();
/// Drops every cached schedule and zeroes the counters.
void MC_SchedCacheClear();
/// Bounds the rank's cache, evicting least-recently-used schedules.
void MC_SetSchedCacheCapacity(std::size_t capacity);

// --- data movement --------------------------------------------------------------

template <typename T>
void MC_DataMove(transport::Comm& comm, SchedId sched, std::span<const T> src,
                 std::span<T> dst) {
  core::dataMove<T>(comm, MC_GetSched(sched), src, dst);
}
/// Split-phase form of MC_DataMove: Begin posts the sends and returns the
/// in-flight move; poll() it while computing away from its footprint(),
/// then MC_DataMoveEnd (or .finish) unpacks into dst.  Bitwise identical
/// to MC_DataMove.  The schedule handle must stay alive until End.
template <typename T>
core::PendingMove<T> MC_DataMoveBegin(transport::Comm& comm, SchedId sched,
                                      std::span<const T> src) {
  return core::dataMoveBegin<T>(comm, MC_GetSched(sched), src);
}
template <typename T>
void MC_DataMoveEnd(core::PendingMove<T>& move, std::span<T> dst) {
  core::dataMoveEnd<T>(move, dst);
}
template <typename T>
void MC_DataMoveSend(transport::Comm& comm, SchedId sched,
                     std::span<const T> src) {
  core::dataMoveSend<T>(comm, MC_GetSched(sched), src);
}
template <typename T>
void MC_DataMoveRecv(transport::Comm& comm, SchedId sched, std::span<T> dst) {
  core::dataMoveRecv<T>(comm, MC_GetSched(sched), dst);
}

// --- lifecycle --------------------------------------------------------------------

void MC_FreeRegion(RegionId region);
void MC_FreeSet(SetId set);
void MC_FreeObject(ObjectId obj);
void MC_FreeSched(SchedId sched);
/// Drops every handle owned by the calling virtual processor.
void MC_Reset();

}  // namespace mc::api
