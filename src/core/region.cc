#include "core/region.h"

#include <cstring>

#include "util/error.h"

namespace mc::core {

using layout::Index;

Region Region::section(layout::RegularSection s) {
  Region r;
  r.kind_ = Kind::kSection;
  r.section_ = s;
  return r;
}

Region Region::indices(std::vector<Index> idx) {
  Region r;
  r.kind_ = Kind::kIndices;
  r.indices_ = std::move(idx);
  return r;
}

Region Region::range(Index lo, Index hi, Index stride) {
  MC_REQUIRE(stride > 0, "range stride must be positive");
  Region r;
  r.kind_ = Kind::kRange;
  r.range_ = ElementRange{lo, hi, stride};
  return r;
}

Index Region::numElements() const {
  switch (kind_) {
    case Kind::kSection:
      return section_.numElements();
    case Kind::kIndices:
      return static_cast<Index>(indices_.size());
    case Kind::kRange:
      return range_.numElements();
  }
  MC_CHECK(false);
  return 0;
}

const layout::RegularSection& Region::asSection() const {
  MC_REQUIRE(kind_ == Kind::kSection, "region is not a section region");
  return section_;
}

const std::vector<Index>& Region::asIndices() const {
  MC_REQUIRE(kind_ == Kind::kIndices, "region is not an index region");
  return indices_;
}

const ElementRange& Region::asRange() const {
  MC_REQUIRE(kind_ == Kind::kRange, "region is not a range region");
  return range_;
}

void SetOfRegions::add(Region r) {
  MC_REQUIRE(regions_.empty() || regions_.front().kind() == r.kind(),
             "all regions of a SetOfRegions must share one kind");
  regions_.push_back(std::move(r));
}

Index SetOfRegions::numElements() const {
  Index n = 0;
  for (const Region& r : regions_) n += r.numElements();
  return n;
}

Region::Kind SetOfRegions::kind() const {
  MC_REQUIRE(!regions_.empty(), "empty SetOfRegions has no kind");
  return regions_.front().kind();
}

namespace {

void putIndex(std::vector<std::byte>& out, Index v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

Index getIndex(std::span<const std::byte> bytes, size_t& pos) {
  MC_REQUIRE(pos + sizeof(Index) <= bytes.size(), "truncated SetOfRegions");
  Index v = 0;
  std::memcpy(&v, bytes.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

}  // namespace

std::vector<std::byte> serializeSet(const SetOfRegions& set) {
  std::vector<std::byte> out;
  putIndex(out, static_cast<Index>(set.regions().size()));
  for (const Region& r : set.regions()) {
    putIndex(out, static_cast<Index>(r.kind()));
    switch (r.kind()) {
      case Region::Kind::kSection: {
        const layout::RegularSection& s = r.asSection();
        putIndex(out, s.rank);
        for (int d = 0; d < s.rank; ++d) {
          const auto dd = static_cast<size_t>(d);
          putIndex(out, s.lo[dd]);
          putIndex(out, s.hi[dd]);
          putIndex(out, s.stride[dd]);
        }
        break;
      }
      case Region::Kind::kIndices: {
        const auto& idx = r.asIndices();
        putIndex(out, static_cast<Index>(idx.size()));
        for (Index g : idx) putIndex(out, g);
        break;
      }
      case Region::Kind::kRange: {
        const ElementRange& e = r.asRange();
        putIndex(out, e.lo);
        putIndex(out, e.hi);
        putIndex(out, e.stride);
        break;
      }
    }
  }
  return out;
}

SetOfRegions deserializeSet(std::span<const std::byte> bytes) {
  SetOfRegions set;
  size_t pos = 0;
  const Index nRegions = getIndex(bytes, pos);
  for (Index i = 0; i < nRegions; ++i) {
    const auto kind = static_cast<Region::Kind>(getIndex(bytes, pos));
    switch (kind) {
      case Region::Kind::kSection: {
        layout::RegularSection s;
        s.rank = static_cast<int>(getIndex(bytes, pos));
        MC_REQUIRE(s.rank >= 1 && s.rank <= layout::kMaxRank,
                   "bad section rank in serialized SetOfRegions");
        for (int d = 0; d < s.rank; ++d) {
          const auto dd = static_cast<size_t>(d);
          s.lo[dd] = getIndex(bytes, pos);
          s.hi[dd] = getIndex(bytes, pos);
          s.stride[dd] = getIndex(bytes, pos);
        }
        set.add(Region::section(s));
        break;
      }
      case Region::Kind::kIndices: {
        const Index n = getIndex(bytes, pos);
        std::vector<Index> idx;
        idx.reserve(static_cast<size_t>(n));
        for (Index k = 0; k < n; ++k) idx.push_back(getIndex(bytes, pos));
        set.add(Region::indices(std::move(idx)));
        break;
      }
      case Region::Kind::kRange: {
        const Index lo = getIndex(bytes, pos);
        const Index hi = getIndex(bytes, pos);
        const Index stride = getIndex(bytes, pos);
        set.add(Region::range(lo, hi, stride));
        break;
      }
      default:
        MC_REQUIRE(false, "bad region kind in serialized SetOfRegions");
    }
  }
  MC_REQUIRE(pos == bytes.size(), "trailing bytes in serialized SetOfRegions");
  return set;
}

}  // namespace mc::core
