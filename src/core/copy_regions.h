// One-call region copies with automatic schedule reuse.
//
// copyRegions is the "just move the data" entry point: it looks the
// schedule up in the calling rank's ScheduleCache (building and caching it
// on the first call) and executes it.  A time-step loop can therefore call
// copyRegions every iteration and still pay the schedule build exactly
// once — the amortization pattern the paper's Figure 15 break-even analysis
// assumes, without the call site hand-managing schedule lifetimes.
#pragma once

#include "core/data_move.h"
#include "core/schedule_cache.h"

namespace mc::core {

/// Intra-program cached copy.  Collective over the program.
template <typename T>
void copyRegions(transport::Comm& comm, const DistObject& srcObj,
                 const SetOfRegions& srcSet, std::span<const T> src,
                 const DistObject& dstObj, const SetOfRegions& dstSet,
                 std::span<T> dst, Method method = Method::kCooperation,
                 ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched = c.getOrBuild(comm, srcObj, srcSet, dstObj, dstSet, method);
  dataMove<T>(comm, *sched, src, dst);
}

/// Inter-program cached copy, source half; the destination program must
/// concurrently call copyRegionsRecv.  Collective over both programs.
template <typename T>
void copyRegionsSend(transport::Comm& comm, const DistObject& srcObj,
                     const SetOfRegions& srcSet, std::span<const T> src,
                     int remoteProgram, Method method = Method::kCooperation,
                     ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched =
      c.getOrBuildSend(comm, srcObj, srcSet, remoteProgram, method);
  dataMoveSend<T>(comm, *sched, src);
}

/// Inter-program cached copy, destination half.
template <typename T>
void copyRegionsRecv(transport::Comm& comm, const DistObject& dstObj,
                     const SetOfRegions& dstSet, std::span<T> dst,
                     int remoteProgram, Method method = Method::kCooperation,
                     ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched =
      c.getOrBuildRecv(comm, dstObj, dstSet, remoteProgram, method);
  dataMoveRecv<T>(comm, *sched, dst);
}

/// A persistent intra-program region copier: resolves the schedule through
/// the cache once at construction and keeps a sched::Executor bound to it,
/// so a loop calling copy() every iteration reuses both the schedule and
/// the executor's message buffers (zero transport payload copies or
/// allocations in steady state) — copyRegions amortizes only the build.
template <typename T>
class RegionCopier {
 public:
  RegionCopier(transport::Comm& comm, const DistObject& srcObj,
               const SetOfRegions& srcSet, const DistObject& dstObj,
               const SetOfRegions& dstSet,
               Method method = Method::kCooperation,
               ScheduleCache* cache = nullptr)
      : exec_(comm,
              planOf(comm, srcObj, srcSet, dstObj, dstSet, method, cache)) {}

  /// One collective copy under the bound schedule.
  void copy(std::span<const T> src, std::span<T> dst) { exec_.run(src, dst); }

 private:
  static std::shared_ptr<const sched::Schedule> planOf(
      transport::Comm& comm, const DistObject& srcObj,
      const SetOfRegions& srcSet, const DistObject& dstObj,
      const SetOfRegions& dstSet, Method method, ScheduleCache* cache) {
    ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
    std::shared_ptr<const McSchedule> sched =
        c.getOrBuild(comm, srcObj, srcSet, dstObj, dstSet, method);
    MC_REQUIRE(sched->remoteProgram < 0,
               "RegionCopier is intra-program; use copyRegionsSend/Recv");
    // Aliasing share: the executor keeps the whole McSchedule alive while
    // pointing at its plan.
    return std::shared_ptr<const sched::Schedule>(sched, &sched->plan);
  }

  sched::Executor<T> exec_;
};

}  // namespace mc::core
