// One-call region copies with automatic schedule reuse.
//
// copyRegions is the "just move the data" entry point: it looks the
// schedule up in the calling rank's ScheduleCache (building and caching it
// on the first call) and executes it.  A time-step loop can therefore call
// copyRegions every iteration and still pay the schedule build exactly
// once — the amortization pattern the paper's Figure 15 break-even analysis
// assumes, without the call site hand-managing schedule lifetimes.
#pragma once

#include "core/data_move.h"
#include "core/schedule_cache.h"

namespace mc::core {

/// Intra-program cached copy.  Collective over the program.
template <typename T>
void copyRegions(transport::Comm& comm, const DistObject& srcObj,
                 const SetOfRegions& srcSet, std::span<const T> src,
                 const DistObject& dstObj, const SetOfRegions& dstSet,
                 std::span<T> dst, Method method = Method::kCooperation,
                 ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched = c.getOrBuild(comm, srcObj, srcSet, dstObj, dstSet, method);
  dataMove<T>(comm, *sched, src, dst);
}

/// Inter-program cached copy, source half; the destination program must
/// concurrently call copyRegionsRecv.  Collective over both programs.
template <typename T>
void copyRegionsSend(transport::Comm& comm, const DistObject& srcObj,
                     const SetOfRegions& srcSet, std::span<const T> src,
                     int remoteProgram, Method method = Method::kCooperation,
                     ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched =
      c.getOrBuildSend(comm, srcObj, srcSet, remoteProgram, method);
  dataMoveSend<T>(comm, *sched, src);
}

/// Inter-program cached copy, destination half.
template <typename T>
void copyRegionsRecv(transport::Comm& comm, const DistObject& dstObj,
                     const SetOfRegions& dstSet, std::span<T> dst,
                     int remoteProgram, Method method = Method::kCooperation,
                     ScheduleCache* cache = nullptr) {
  ScheduleCache& c = cache != nullptr ? *cache : defaultScheduleCache();
  const auto sched =
      c.getOrBuildRecv(comm, dstObj, dstSet, remoteProgram, method);
  dataMoveRecv<T>(comm, *sched, dst);
}

}  // namespace mc::core
