// Comm: the per-virtual-processor communication handle.
//
// A transport *world* runs one or more *programs* (SPMD process groups),
// each with `size()` virtual processors; a Comm is the handle one virtual
// processor holds.  It provides:
//
//   * identity:       rank within the program, program id, global rank
//   * point-to-point: buffered sends and blocking receives, within the
//                     program or across programs (intercommunication)
//   * collectives:    barrier, bcast, gather(v), allgather(v), alltoall(v),
//                     reduce, allreduce — all program-scoped
//   * virtual time:   a per-processor clock advanced by measured thread CPU
//                     time (compute) and by the network cost model (messages)
//
// Typed operations require trivially copyable element types, mirroring the
// POD buffers the paper's libraries ship over MPI/PVM/MPL.
#pragma once

#include <atomic>
#include <cstring>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "transport/buffer_pool.h"
#include "transport/mailbox.h"
#include "transport/message.h"
#include "transport/netmodel.h"
#include "util/error.h"
#include "util/timer.h"

namespace mc::transport {

/// Description of one program (process group) in a world.
struct ProgramInfo {
  std::string name;
  int nprocs = 0;
  int firstGlobalRank = 0;
};

/// Shared state of a running world; owned by World::run, referenced by every
/// Comm.  Not user-visible API.
struct WorldState {
  std::vector<ProgramInfo> programs;
  std::vector<int> programOf;    // global rank -> program id
  std::vector<int> localRankOf;  // global rank -> rank within program
  MailboxTable mail;
  NetworkModel net;
  BufferPool pool;  // shared payload recycler (payloads cross threads)
  double recvTimeoutSeconds;

  WorldState(std::vector<ProgramInfo> progs, std::vector<int> progOf,
             std::vector<int> localOf, int worldSize, NetworkModel model,
             double timeout)
      : programs(std::move(progs)),
        programOf(std::move(progOf)),
        localRankOf(std::move(localOf)),
        mail(worldSize),
        net(std::move(model)),
        recvTimeoutSeconds(timeout) {}
};

/// Per-Comm traffic counters, used by tests to verify the message-count
/// invariants the paper states (at most one message per processor pair),
/// and — via bytesCopied / allocations — to observe the zero-copy executor
/// path: in steady state a schedule run performs no transport-layer payload
/// copies and no payload heap allocations.
struct TrafficStats {
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t bytesReceived = 0;
  /// Payload bytes memcpy'd *inside the transport* (copying sends, vector
  /// receives).  The zero-copy move-send / payload-view paths add nothing.
  std::uint64_t bytesCopied = 0;
  /// Payload buffers heap-allocated on behalf of this rank (copying sends,
  /// vector receives, and BufferPool misses).  Pool hits add nothing.
  std::uint64_t allocations = 0;
  /// Wall-clock seconds this rank spent *blocked* inside mailbox receives
  /// (cv waits included).  Non-blocking polls add nothing, so split-phase
  /// overlap shows up here directly: communication hidden behind interior
  /// computation converts receive wait into (near-)zero.
  double recvWaitSeconds = 0.0;
  /// Messages consumed by a non-blocking try-receive (sched::Executor's
  /// Pending::poll()) — i.e. drained *early*, while the caller was still
  /// computing, instead of in the blocking finish drain.
  std::uint64_t messagesDrainedEarly = 0;
  /// Link-class breakdown of the sends: a message is inter_node when its
  /// endpoints live on different physical nodes (inter-program messages
  /// always do), intra_node otherwise (self-messages included).  The
  /// inter_node count is what the paper's §5.4 NIC-contention curve rises
  /// with, and what node-aggregated schedule execution bounds at
  /// nodes-1 per rank per step.
  std::uint64_t interNodeMessages = 0;
  std::uint64_t interNodeBytes = 0;
  std::uint64_t intraNodeMessages = 0;
  std::uint64_t intraNodeBytes = 0;
  /// Payloads this rank re-sent on behalf of a remote sender as a node
  /// leader (sched::Executor node aggregation).  The sends themselves are
  /// also counted in the intra_node line; this isolates the forwarding
  /// volume.
  std::uint64_t forwardedMessages = 0;
  std::uint64_t forwardedBytes = 0;
};

/// Epoch snapshot/diff: counters are monotone, so the traffic of a code
/// region is `after - before`.  This is how multi-case benches attribute
/// messages/bytes/allocations to the right case without resetStats()
/// clobbering the cumulative counters the obs registry samples.
inline TrafficStats operator-(const TrafficStats& a, const TrafficStats& b) {
  TrafficStats d;
  d.messagesSent = a.messagesSent - b.messagesSent;
  d.bytesSent = a.bytesSent - b.bytesSent;
  d.messagesReceived = a.messagesReceived - b.messagesReceived;
  d.bytesReceived = a.bytesReceived - b.bytesReceived;
  d.bytesCopied = a.bytesCopied - b.bytesCopied;
  d.allocations = a.allocations - b.allocations;
  d.recvWaitSeconds = a.recvWaitSeconds - b.recvWaitSeconds;
  d.messagesDrainedEarly = a.messagesDrainedEarly - b.messagesDrainedEarly;
  d.interNodeMessages = a.interNodeMessages - b.interNodeMessages;
  d.interNodeBytes = a.interNodeBytes - b.interNodeBytes;
  d.intraNodeMessages = a.intraNodeMessages - b.intraNodeMessages;
  d.intraNodeBytes = a.intraNodeBytes - b.intraNodeBytes;
  d.forwardedMessages = a.forwardedMessages - b.forwardedMessages;
  d.forwardedBytes = a.forwardedBytes - b.forwardedBytes;
  return d;
}

class Comm {
 public:
  Comm(WorldState* world, int globalRank);
  /// Unregisters this rank's transport.* metrics from the thread registry.
  ~Comm();

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  // --- identity -----------------------------------------------------------
  int rank() const { return localRank_; }
  int size() const { return programInfo().nprocs; }
  int program() const { return program_; }
  int numPrograms() const { return static_cast<int>(world_->programs.size()); }
  const ProgramInfo& programInfo() const {
    return world_->programs[static_cast<size_t>(program_)];
  }
  const ProgramInfo& programInfo(int p) const {
    return world_->programs.at(static_cast<size_t>(p));
  }
  int globalRank() const { return globalRank_; }
  int worldSize() const {
    return static_cast<int>(world_->programOf.size());
  }
  int globalRankOf(int prog, int localRank) const;
  /// Program-local rank of a world (global) rank.
  int localRankOfGlobal(int globalRank) const {
    return world_->localRankOf.at(static_cast<size_t>(globalRank));
  }

  // --- topology (program scope) ---------------------------------------------
  // Placement comes from the NetworkModel tables World::run built; ranks are
  // program-local.  The *node leader* of a node is the lowest program rank
  // placed there, so rank 0 is always a leader and the leader list is sorted.
  /// Physical node id this rank lives on.
  int myNode() const { return world_->net.nodeOf(globalRank_); }
  /// Physical node id of a program-local rank.
  int nodeOfRank(int localRank) const {
    return world_->net.nodeOf(globalRankOf(program_, localRank));
  }
  /// Node leader (lowest rank) of `localRank`'s node.
  int leaderOfRank(int localRank) const {
    return leaderOf_[static_cast<size_t>(localRank)];
  }
  /// Node leader of this rank's node.
  int nodeLeader() const { return leaderOf_[static_cast<size_t>(localRank_)]; }
  bool isNodeLeader() const { return nodeLeader() == localRank_; }
  /// All program ranks on this rank's node (sorted; includes this rank).
  const std::vector<int>& nodePeers() const { return nodePeers_; }
  /// One leader rank per distinct node of the program (sorted; front() == 0).
  const std::vector<int>& nodeLeaders() const { return nodeLeaders_; }
  /// Number of distinct physical nodes the program spans.
  int programNodes() const { return static_cast<int>(nodeLeaders_.size()); }

  // --- virtual clock ------------------------------------------------------
  double now() const { return clock_; }
  /// Advances the clock by a modeled amount of compute (deterministic).
  void advance(double seconds) {
    MC_REQUIRE(seconds >= 0.0);
    clock_ += seconds;
  }
  /// Runs `fn` and charges its measured thread-CPU time to the clock.
  template <typename F>
  void compute(F&& fn) {
    ThreadCpuTimer t;
    std::forward<F>(fn)();
    clock_ += t.elapsed();
  }
  /// Runs `fn`, charging its CPU time, and returns its result.
  template <typename F>
  auto computeValue(F&& fn) {
    ThreadCpuTimer t;
    auto result = std::forward<F>(fn)();
    clock_ += t.elapsed();
    return result;
  }

  const TrafficStats& stats() const { return stats_; }
  void resetStats() { stats_ = TrafficStats{}; }
  /// Records that this rank re-sent `bytes` of payload on behalf of a remote
  /// sender (node-leader forwarding in sched::Executor's aggregated mode).
  /// The forwarding send itself goes through sendBytes and is counted there;
  /// this tracks the forwarded volume for transport.forwarded.*.
  void noteForwarded(std::size_t bytes) {
    ++stats_.forwardedMessages;
    stats_.forwardedBytes += bytes;
  }

  // --- tag allocation -------------------------------------------------------
  /// Allocates a tag for an intra-program communication phase.  All
  /// processors of a program must allocate in the same (SPMD) order — the
  /// usual collective-call discipline — so peers agree on the value.
  int nextUserTag() { return kUserTagBase + (userTagSeq_++ % kUserTagRange); }
  /// Allocates a tag for a communication phase paired with program `prog`.
  /// Both programs must make paired allocations in the same order; the
  /// counter only advances for phases with that specific peer program, so
  /// unrelated intra-program activity cannot desynchronize it.
  int nextInterTag(int prog) {
    MC_REQUIRE(prog >= 0 && prog < numPrograms() && prog != program_);
    if (interTagSeq_.size() < static_cast<size_t>(numPrograms())) {
      interTagSeq_.resize(static_cast<size_t>(numPrograms()), 0);
    }
    return kInterTagBase +
           (interTagSeq_[static_cast<size_t>(prog)]++ % kUserTagRange);
  }

  // --- point to point (program scope; ranks are program-local) -------------
  void sendBytes(int dst, int tag, std::span<const std::byte> data);
  /// Zero-copy send: the buffer is *moved* into the Message — no payload
  /// copy, no allocation.  The steady-state path of sched::Executor.
  void sendBytes(int dst, int tag, std::vector<std::byte>&& data);
  /// Blocking receive; src may be kAnySource, tag may be kAnyTag.
  Message recvMsg(int src, int tag);
  /// Blocking receive matching any rank of program `prog` (which may be the
  /// calling program) with tag `tag`.  Unlike a bare kAnySource match, the
  /// wildcard is scoped to that program's global-rank range, so same-tag
  /// traffic from other programs can never be stolen.  This is the
  /// arrival-order drain primitive of sched::Executor.
  Message recvMsgAnyOf(int prog, int tag);
  /// Non-blocking recvMsg: returns the queued matching message, or nullopt
  /// without blocking.  A returned message pays the usual receive clock
  /// charges and counts toward messagesDrainedEarly.
  std::optional<Message> tryRecvMsg(int src, int tag);
  /// Non-blocking recvMsgAnyOf — the opportunistic drain primitive of the
  /// split-phase executor (Pending::poll()).
  std::optional<Message> tryRecvMsgAnyOf(int prog, int tag);
  /// Non-blocking probe (MPI_Iprobe-like): true when a matching message is
  /// already queued.  Does not consume the message or advance the clock.
  bool probe(int src, int tag);
  /// Probe matching any rank of program `prog` (the probe analogue of
  /// recvMsgAnyOf, scoped to that program's global-rank range).
  bool probeAnyOf(int prog, int tag);
  /// Blocking receive matching any rank of any program in [progLo, progHi]
  /// (a contiguous program span) with tag `tag`.  Built on the same
  /// MailboxTable::receiveRange rank-range scoping as recvMsgAnyOf — this
  /// is the control-plane primitive of the multi-tenant compute server,
  /// whose rank 0 serves requests from a whole span of client programs
  /// without knowing which will speak next.
  Message recvMsgAnyOfPrograms(int progLo, int progHi, int tag);
  /// Non-blocking recvMsgAnyOfPrograms.
  std::optional<Message> tryRecvMsgAnyOfPrograms(int progLo, int progHi,
                                                 int tag);
  /// Program id of a world (global) rank — e.g. to identify the client a
  /// wildcard control message came from.
  int programOf(int globalRank) const {
    return world_->programOf.at(static_cast<size_t>(globalRank));
  }

  // --- point to point across programs --------------------------------------
  void sendBytesTo(int prog, int rankInProg, int tag,
                   std::span<const std::byte> data);
  /// Zero-copy variant (buffer moved into the Message).
  void sendBytesTo(int prog, int rankInProg, int tag,
                   std::vector<std::byte>&& data);
  Message recvMsgFrom(int prog, int rankInProg, int tag);

  // --- pooled payload buffers ----------------------------------------------
  /// A payload buffer with size() == nbytes from the world's BufferPool
  /// (class-rounded capacity).  Counts an allocation only on a pool miss;
  /// pass the filled buffer to the move overload of sendBytes for an
  /// allocation-free, copy-free send.
  std::vector<std::byte> acquirePayload(std::size_t nbytes) {
    bool fresh = false;
    std::vector<std::byte> buf = world_->pool.acquire(nbytes, &fresh);
    if (fresh) ++stats_.allocations;
    return buf;
  }
  /// Recycles a payload buffer (typically a received Message's) so a later
  /// acquirePayload — on any rank — reuses its capacity.
  void releasePayload(std::vector<std::byte>&& buf) {
    world_->pool.release(std::move(buf));
  }

  // --- typed convenience ----------------------------------------------------
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(dst, tag, std::as_bytes(data));
  }
  template <typename T>
  void send(int dst, int tag, const std::vector<T>& data) {
    send(dst, tag, std::span<const T>(data));
  }
  template <typename T>
  void sendValue(int dst, int tag, const T& v) {
    send(dst, tag, std::span<const T>(&v, 1));
  }
  template <typename T>
  std::vector<T> recv(int src, int tag, int* srcOut = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recvMsg(src, tag);
    if (srcOut != nullptr) {
      *srcOut = world_->localRankOf[static_cast<size_t>(m.srcGlobal)];
    }
    return unpackVector<T>(m);
  }
  /// Receives directly into caller storage: one memcpy, no intermediate
  /// vector, and the payload buffer recycles through the pool.  The message
  /// must carry exactly out.size_bytes() bytes.  Returns the source rank.
  template <typename T>
  int recvInto(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recvMsg(src, tag);
    MC_REQUIRE(m.payload.size() == out.size_bytes(),
               "recvInto size mismatch: message %zu bytes, buffer %zu",
               m.payload.size(), out.size_bytes());
    if (!m.payload.empty()) {
      std::memcpy(out.data(), m.payload.data(), m.payload.size());
      stats_.bytesCopied += m.payload.size();
    }
    const int r = world_->localRankOf[static_cast<size_t>(m.srcGlobal)];
    releasePayload(std::move(m.payload));
    return r;
  }
  template <typename T>
  T recvValue(int src, int tag) {
    std::vector<T> v = recv<T>(src, tag);
    MC_REQUIRE(v.size() == 1, "expected a single %zu-byte value, got %zu "
               "elements", sizeof(T), v.size());
    return v[0];
  }
  template <typename T>
  void sendValueTo(int prog, int rankInProg, int tag, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytesTo(prog, rankInProg, tag,
                std::as_bytes(std::span<const T>(&v, 1)));
  }
  template <typename T>
  void sendTo(int prog, int rankInProg, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytesTo(prog, rankInProg, tag, std::as_bytes(data));
  }
  template <typename T>
  void sendTo(int prog, int rankInProg, int tag, const std::vector<T>& data) {
    sendTo(prog, rankInProg, tag, std::span<const T>(data));
  }
  template <typename T>
  std::vector<T> recvFrom(int prog, int rankInProg, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recvMsgFrom(prog, rankInProg, tag);
    return unpackVector<T>(m);
  }
  template <typename T>
  T recvValueFrom(int prog, int rankInProg, int tag) {
    std::vector<T> v = recvFrom<T>(prog, rankInProg, tag);
    MC_REQUIRE(v.size() == 1);
    return v[0];
  }

  // --- collectives (program scope) ------------------------------------------
  /// Synchronizes all processors of the program and their clocks (every
  /// clock becomes at least the maximum participating clock).
  void barrier();

  /// Root's buffer is broadcast to everyone; others' buffers are replaced.
  void bcastBytes(std::vector<std::byte>& buf, int root);

  /// Gathers each rank's buffer at root; result[r] = rank r's buffer (empty
  /// vector everywhere except root).
  std::vector<std::vector<std::byte>> gatherBytes(
      std::span<const std::byte> mine, int root);

  /// gatherBytes + bcast: every rank gets all buffers.
  std::vector<std::vector<std::byte>> allgatherBytes(
      std::span<const std::byte> mine);

  /// Personalized all-to-all: sendTo[r] goes to rank r; returns recvFrom[r].
  /// Both loops walk peers in the pairwise rotation (me + i) % size(), so
  /// under contention no single low rank's NIC serializes every sender.
  std::vector<std::vector<std::byte>> alltoallBytes(
      const std::vector<std::vector<std::byte>>& sendTo);
  /// Rvalue variant: the self row is moved into the result, not deep-copied.
  std::vector<std::vector<std::byte>> alltoallBytes(
      std::vector<std::vector<std::byte>>&& sendTo);

  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(data.size() * sizeof(T));
    if (!buf.empty()) std::memcpy(buf.data(), data.data(), buf.size());
    bcastBytes(buf, root);
    data.resize(buf.size() / sizeof(T));
    if (!buf.empty()) std::memcpy(data.data(), buf.data(), buf.size());
  }
  template <typename T>
  T bcastValue(T v, int root) {
    std::vector<T> tmp{v};
    bcast(tmp, root);
    return tmp[0];
  }
  template <typename T>
  std::vector<std::vector<T>> gather(std::span<const T> mine, int root) {
    return typedBuffers<T>(gatherBytes(std::as_bytes(mine), root));
  }
  template <typename T>
  std::vector<std::vector<T>> allgather(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Parse typed rows straight out of the size-prefixed flat buffer —
    // one copy per row, instead of the byte-rows round trip (flat -> byte
    // rows -> typed rows) the generic allgatherBytes + typedBuffers pair
    // would pay.
    const std::vector<std::byte> flat = allgatherFlat(std::as_bytes(mine));
    std::vector<std::vector<T>> out(static_cast<size_t>(size()));
    forEachFlatRow(flat, [&](int r, std::span<const std::byte> row) {
      MC_CHECK(row.size() % sizeof(T) == 0);
      auto& dst = out[static_cast<size_t>(r)];
      dst.resize(row.size() / sizeof(T));
      if (!row.empty()) {
        std::memcpy(dst.data(), row.data(), row.size());
        stats_.bytesCopied += row.size();
        ++stats_.allocations;
      }
    });
    return out;
  }
  template <typename T>
  std::vector<T> allgatherValue(const T& v) {
    auto rows = allgather<T>(std::span<const T>(&v, 1));
    std::vector<T> out;
    out.reserve(rows.size());
    for (auto& r : rows) {
      MC_REQUIRE(r.size() == 1);
      out.push_back(r[0]);
    }
    return out;
  }
  template <typename T>
  std::vector<std::vector<T>> alltoall(
      const std::vector<std::vector<T>>& sendTo) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::vector<std::byte>> raw(sendTo.size());
    for (size_t r = 0; r < sendTo.size(); ++r) {
      raw[r].resize(sendTo[r].size() * sizeof(T));
      if (!raw[r].empty()) {
        std::memcpy(raw[r].data(), sendTo[r].data(), raw[r].size());
      }
    }
    return typedBuffers<T>(alltoallBytes(std::move(raw)));
  }
  /// Element-wise reduction with `op` at every rank (allreduce):
  /// binomial-tree reduce to rank 0 followed by a binomial broadcast, so
  /// the modeled message volume is O(p log p) rather than the O(p^2) a
  /// rank-0 fan-in allgather would cost.  `op` must be associative and
  /// commutative; reduction order is deterministic (fixed tree shape) but
  /// not rank order.  Under hierarchical collectives the leaf values travel
  /// members -> node leader -> rank 0 and rank 0 replays the *same* binomial
  /// combination order locally, so the result stays bitwise identical.
  template <typename T, typename Op>
  T allreduceValue(T v, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = collectiveTag();
    const int me = rank();
    const int np = size();
    if (hierarchicalOn()) {
      struct Entry {
        std::int32_t rank;
        T value;
      };
      if (!isNodeLeader()) {
        Entry e{};
        e.rank = me;
        e.value = v;
        send(nodeLeader(), tag, std::span<const Entry>(&e, 1));
      } else {
        std::vector<Entry> batch;
        batch.reserve(nodePeers_.size());
        Entry mine{};
        mine.rank = me;
        mine.value = v;
        batch.push_back(mine);
        for (int r : nodePeers_) {
          if (r == me) continue;
          std::vector<Entry> got = recv<Entry>(r, tag);
          MC_REQUIRE(got.size() == 1);
          batch.push_back(got[0]);
        }
        if (me != 0) {
          send(0, tag, batch);
        } else {
          // Rank 0 is always a node leader; collect every leaf value in
          // rank order, then combine with the flat tree's association.
          std::vector<T> values(static_cast<size_t>(np), v);
          for (size_t l = 1; l < nodeLeaders_.size(); ++l) {
            for (const Entry& e : recv<Entry>(nodeLeaders_[l], tag)) {
              batch.push_back(e);
            }
          }
          for (const Entry& e : batch) {
            MC_REQUIRE(e.rank >= 0 && e.rank < np);
            values[static_cast<size_t>(e.rank)] = e.value;
          }
          v = binomialCombine(values, op);
        }
      }
      return bcastValue(v, 0);  // bcastValue rides the hierarchical bcast
    }
    T acc = v;
    for (int mask = 1; mask < np; mask <<= 1) {
      if ((me & mask) != 0) {
        sendValue(me - mask, tag, acc);
        break;
      }
      if (me + mask < np) acc = op(acc, recvValue<T>(me + mask, tag));
    }
    return bcastValue(acc, 0);
  }
  double allreduceMax(double v) {
    return allreduceValue(v, [](double a, double b) { return a > b ? a : b; });
  }
  double allreduceSum(double v) {
    return allreduceValue(v, [](double a, double b) { return a + b; });
  }

 private:
  /// True when collectives should run the two-level (node-hierarchical)
  /// algorithms: the flag is set and the program both spans more than one
  /// node and packs more than one rank on some node (otherwise the flat
  /// algorithms already match the topology).
  bool hierarchicalOn() const {
    return world_->net.config().hierarchicalCollectives &&
           nodeLeaders_.size() > 1 &&
           static_cast<int>(nodeLeaders_.size()) < size();
  }
  /// Index of `leaderRank` in nodeLeaders_ (must be a leader).
  int leaderIndexOfRank(int leaderRank) const;
  void hierarchicalBarrier();
  void hierarchicalBcast(std::vector<std::byte>& buf, int root);
  std::vector<std::byte> allgatherFlatHierarchical(
      std::span<const std::byte> mine);
  /// Shared alltoall body; `selfRow` non-null means the self row may be
  /// moved from instead of copied.
  std::vector<std::vector<std::byte>> alltoallImpl(
      const std::vector<std::vector<std::byte>>& sendTo,
      std::vector<std::byte>* selfRow);

  /// Combines values[0..n) with exactly the association the flat binomial
  /// reduce uses (rank r merges rank r+mask at each mask level), so a
  /// root-side replay is bitwise identical to the distributed tree.
  template <typename T, typename Op>
  static T binomialCombine(std::vector<T> values, Op op) {
    const int np = static_cast<int>(values.size());
    MC_REQUIRE(np > 0);
    for (int mask = 1; mask < np; mask <<= 1) {
      for (int r = 0; r + mask < np; r += 2 * mask) {
        values[static_cast<size_t>(r)] =
            op(values[static_cast<size_t>(r)],
               values[static_cast<size_t>(r + mask)]);
      }
    }
    return values[0];
  }

  template <typename T>
  std::vector<T> unpackVector(const Message& m) {
    MC_REQUIRE(m.payload.size() % sizeof(T) == 0,
               "message size %zu not a multiple of element size %zu",
               m.payload.size(), sizeof(T));
    std::vector<T> out(m.payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), m.payload.data(), m.payload.size());
      stats_.bytesCopied += m.payload.size();
      ++stats_.allocations;
    }
    return out;
  }
  template <typename T>
  std::vector<std::vector<T>> typedBuffers(
      std::vector<std::vector<std::byte>> raw) {
    std::vector<std::vector<T>> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      MC_REQUIRE(raw[i].size() % sizeof(T) == 0);
      out[i].resize(raw[i].size() / sizeof(T));
      if (!raw[i].empty()) {
        std::memcpy(out[i].data(), raw[i].data(), raw[i].size());
        stats_.bytesCopied += raw[i].size();
        ++stats_.allocations;
      }
    }
    return out;
  }

  /// The single gather + flatten behind allgatherBytes / allgather<T>:
  /// every rank ends up with [u64 size][bytes] per rank, in rank order.
  std::vector<std::byte> allgatherFlat(std::span<const std::byte> mine);
  /// Walks the rows of an allgatherFlat buffer: fn(rank, row bytes).
  template <typename F>
  void forEachFlatRow(std::span<const std::byte> flat, F&& fn) {
    size_t pos = 0;
    for (int r = 0; r < size(); ++r) {
      MC_CHECK(pos + sizeof(std::uint64_t) <= flat.size());
      std::uint64_t n = 0;
      std::memcpy(&n, flat.data() + pos, sizeof(n));
      pos += sizeof(n);
      MC_CHECK(pos + n <= flat.size());
      fn(r, flat.subspan(pos, static_cast<size_t>(n)));
      pos += static_cast<size_t>(n);
    }
    MC_CHECK(pos == flat.size());
  }

  void sendGlobal(int dstGlobal, int tag, std::span<const std::byte> data);
  void sendGlobal(int dstGlobal, int tag, std::vector<std::byte>&& data);
  void finishSend(int dstGlobal, int tag, Message&& msg);
  Message recvGlobal(int srcGlobal, int tag);
  Message recvGlobalRange(int srcLo, int srcHi, int tag);
  std::optional<Message> tryRecvGlobalRange(int srcLo, int srcHi, int tag);
  Message finishRecv(Message m);
  int collectiveTag() {
    return kCollectiveTagBase + (collectiveSeq_++ % kCollectiveTagRange);
  }

  static constexpr int kCollectiveTagBase = 1 << 28;
  static constexpr int kCollectiveTagRange = 1 << 20;
  static constexpr int kUserTagBase = 1 << 20;
  static constexpr int kInterTagBase = 1 << 24;
  static constexpr int kUserTagRange = 1 << 18;

  WorldState* world_;
  int globalRank_;
  int program_;
  int localRank_;
  double clock_ = 0.0;
  int collectiveSeq_ = 0;
  int userTagSeq_ = 0;
  std::vector<int> interTagSeq_;
  TrafficStats stats_;
  // Topology tables (program scope), derived from the NetworkModel placement
  // in the constructor.  See the topology accessor section.
  std::vector<int> leaderOf_;     // local rank -> its node leader
  std::vector<int> nodePeers_;    // local ranks on my node (sorted)
  std::vector<int> nodeLeaders_;  // one leader per node (sorted)
};

}  // namespace mc::transport
