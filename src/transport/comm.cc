#include "transport/comm.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "obs/metrics.h"

namespace mc::transport {

Comm::Comm(WorldState* world, int globalRank)
    : world_(world), globalRank_(globalRank) {
  MC_REQUIRE(world != nullptr);
  MC_REQUIRE(globalRank >= 0 &&
             globalRank < static_cast<int>(world->programOf.size()));
  program_ = world_->programOf[static_cast<size_t>(globalRank)];
  localRank_ = world_->localRankOf[static_cast<size_t>(globalRank)];

  // Topology tables.  A node's leader is the lowest program rank placed on
  // it, so the discovery order below (ranks ascending) yields sorted leader
  // and peer lists, and rank 0 is always a leader.
  const ProgramInfo& info = world_->programs[static_cast<size_t>(program_)];
  const int myNodeId = world_->net.nodeOf(globalRank_);
  leaderOf_.resize(static_cast<size_t>(info.nprocs));
  std::unordered_map<int, int> leaderOfNode;
  for (int r = 0; r < info.nprocs; ++r) {
    const int node = world_->net.nodeOf(info.firstGlobalRank + r);
    const auto [it, fresh] = leaderOfNode.try_emplace(node, r);
    if (fresh) nodeLeaders_.push_back(r);
    leaderOf_[static_cast<size_t>(r)] = it->second;
    if (node == myNodeId) nodePeers_.push_back(r);
  }

  // The rank's counters become visible through its thread registry: obs
  // snapshots sample these closures, the counters themselves stay plain
  // struct fields (zero hot-path cost).  Each rank is one thread, so the
  // thread_local registry *is* the per-rank registry.
  obs::MetricsRegistry& reg = obs::threadRegistry();
  reg.setVirtualClock([this] { return clock_; });
  const auto counter = [&reg, this](const char* name,
                                    const std::uint64_t TrafficStats::*f) {
    reg.registerCounter(name, [this, f] {
      return static_cast<double>(stats_.*f);
    });
  };
  counter("transport.messages_sent", &TrafficStats::messagesSent);
  counter("transport.bytes_sent", &TrafficStats::bytesSent);
  counter("transport.messages_received", &TrafficStats::messagesReceived);
  counter("transport.bytes_received", &TrafficStats::bytesReceived);
  counter("transport.bytes_copied", &TrafficStats::bytesCopied);
  counter("transport.allocations", &TrafficStats::allocations);
  counter("transport.messages_drained_early",
          &TrafficStats::messagesDrainedEarly);
  counter("transport.inter_node.messages", &TrafficStats::interNodeMessages);
  counter("transport.inter_node.bytes", &TrafficStats::interNodeBytes);
  counter("transport.intra_node.messages", &TrafficStats::intraNodeMessages);
  counter("transport.intra_node.bytes", &TrafficStats::intraNodeBytes);
  counter("transport.forwarded.messages", &TrafficStats::forwardedMessages);
  counter("transport.forwarded.bytes", &TrafficStats::forwardedBytes);
  reg.registerCounter("transport.recv_wait_seconds",
                      [this] { return stats_.recvWaitSeconds; });
  // The world's shared payload pool (counters are world-wide, not
  // per-rank; a per-rank snapshot diff shows pool activity in the window).
  reg.registerCounter("transport.pool.acquires", [this] {
    return static_cast<double>(world_->pool.stats().acquires);
  });
  reg.registerCounter("transport.pool.hits", [this] {
    return static_cast<double>(world_->pool.stats().hits);
  });
  reg.registerCounter("transport.pool.allocations", [this] {
    return static_cast<double>(world_->pool.stats().allocations);
  });
  reg.registerCounter("transport.pool.releases", [this] {
    return static_cast<double>(world_->pool.stats().releases);
  });
  reg.registerCounter("transport.pool.dropped", [this] {
    return static_cast<double>(world_->pool.stats().dropped);
  });
  reg.registerCounter("transport.virtual_seconds",
                      [this] { return clock_; });
}

Comm::~Comm() {
  obs::MetricsRegistry& reg = obs::threadRegistry();
  reg.unregisterPrefix("transport.");
  reg.clearVirtualClock();
}

int Comm::globalRankOf(int prog, int localRank) const {
  const ProgramInfo& info = programInfo(prog);
  MC_REQUIRE(localRank >= 0 && localRank < info.nprocs,
             "rank %d out of range for program %d (size %d)", localRank, prog,
             info.nprocs);
  return info.firstGlobalRank + localRank;
}

void Comm::sendGlobal(int dstGlobal, int tag,
                      std::span<const std::byte> data) {
  // Copying path: the payload is a fresh heap buffer filled from `data`.
  stats_.bytesCopied += data.size();
  if (!data.empty()) ++stats_.allocations;
  Message msg;
  msg.payload.assign(data.begin(), data.end());
  finishSend(dstGlobal, tag, std::move(msg));
}

void Comm::sendGlobal(int dstGlobal, int tag, std::vector<std::byte>&& data) {
  // Zero-copy path: the caller's buffer becomes the payload outright.
  Message msg;
  msg.payload = std::move(data);
  finishSend(dstGlobal, tag, std::move(msg));
}

void Comm::finishSend(int dstGlobal, int tag, Message&& msg) {
  const NetParams& p = world_->net.paramsFor(globalRank_, dstGlobal);
  const size_t nbytes = msg.payload.size();
  clock_ += p.sendOverhead +
            world_->net.senderOccupancy(globalRank_, dstGlobal, nbytes);
  msg.srcGlobal = globalRank_;
  msg.tag = tag;
  msg.arrival = world_->net.arrival(clock_, globalRank_, dstGlobal, nbytes);
  ++stats_.messagesSent;
  stats_.bytesSent += nbytes;
  if (world_->net.nodeOf(globalRank_) != world_->net.nodeOf(dstGlobal)) {
    ++stats_.interNodeMessages;
    stats_.interNodeBytes += nbytes;
  } else {
    ++stats_.intraNodeMessages;
    stats_.intraNodeBytes += nbytes;
  }
  world_->mail.deliver(dstGlobal, std::move(msg));
}

Message Comm::recvGlobal(int srcGlobal, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  Message m = world_->mail.receive(globalRank_, srcGlobal, tag,
                                   world_->recvTimeoutSeconds);
  stats_.recvWaitSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return finishRecv(std::move(m));
}

Message Comm::recvGlobalRange(int srcLo, int srcHi, int tag) {
  const auto t0 = std::chrono::steady_clock::now();
  Message m = world_->mail.receiveRange(globalRank_, srcLo, srcHi, tag,
                                        world_->recvTimeoutSeconds);
  stats_.recvWaitSeconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return finishRecv(std::move(m));
}

std::optional<Message> Comm::tryRecvGlobalRange(int srcLo, int srcHi,
                                                int tag) {
  std::optional<Message> m =
      world_->mail.tryReceiveRange(globalRank_, srcLo, srcHi, tag);
  if (!m.has_value()) return std::nullopt;
  ++stats_.messagesDrainedEarly;
  return finishRecv(std::move(*m));
}

Message Comm::finishRecv(Message m) {
  const NetParams& p = world_->net.paramsFor(m.srcGlobal, globalRank_);
  clock_ = std::max(clock_, m.arrival) + p.recvOverhead +
           world_->net.receiverOccupancy(m.srcGlobal, globalRank_,
                                         m.payload.size());
  ++stats_.messagesReceived;
  stats_.bytesReceived += m.payload.size();
  return m;
}

void Comm::sendBytes(int dst, int tag, std::span<const std::byte> data) {
  sendGlobal(globalRankOf(program_, dst), tag, data);
}

void Comm::sendBytes(int dst, int tag, std::vector<std::byte>&& data) {
  sendGlobal(globalRankOf(program_, dst), tag, std::move(data));
}

Message Comm::recvMsg(int src, int tag) {
  const int srcGlobal =
      (src == kAnySource) ? kAnySource : globalRankOf(program_, src);
  // kAnySource within a program must not match cross-program traffic; the
  // libraries in this reproduction always use distinct tags for the two, so
  // plain global matching is sufficient and keeps the mailbox simple.
  // (Arrival-order schedule drains use recvMsgAnyOf instead, which scopes
  // the wildcard to one program's rank range.)
  return recvGlobal(srcGlobal, tag);
}

Message Comm::recvMsgAnyOf(int prog, int tag) {
  const ProgramInfo& info = programInfo(prog);
  return recvGlobalRange(info.firstGlobalRank,
                         info.firstGlobalRank + info.nprocs - 1, tag);
}

std::optional<Message> Comm::tryRecvMsg(int src, int tag) {
  const int srcGlobal = globalRankOf(program_, src);
  return tryRecvGlobalRange(srcGlobal, srcGlobal, tag);
}

std::optional<Message> Comm::tryRecvMsgAnyOf(int prog, int tag) {
  const ProgramInfo& info = programInfo(prog);
  return tryRecvGlobalRange(info.firstGlobalRank,
                            info.firstGlobalRank + info.nprocs - 1, tag);
}

bool Comm::probe(int src, int tag) {
  const int srcGlobal =
      (src == kAnySource) ? kAnySource : globalRankOf(program_, src);
  return world_->mail.probe(globalRank_, srcGlobal, tag);
}

Message Comm::recvMsgAnyOfPrograms(int progLo, int progHi, int tag) {
  MC_REQUIRE(progLo >= 0 && progLo <= progHi && progHi < numPrograms(),
             "bad program span [%d, %d] of %d", progLo, progHi,
             numPrograms());
  const ProgramInfo& lo = programInfo(progLo);
  const ProgramInfo& hi = programInfo(progHi);
  return recvGlobalRange(lo.firstGlobalRank,
                         hi.firstGlobalRank + hi.nprocs - 1, tag);
}

std::optional<Message> Comm::tryRecvMsgAnyOfPrograms(int progLo, int progHi,
                                                     int tag) {
  MC_REQUIRE(progLo >= 0 && progLo <= progHi && progHi < numPrograms(),
             "bad program span [%d, %d] of %d", progLo, progHi,
             numPrograms());
  const ProgramInfo& lo = programInfo(progLo);
  const ProgramInfo& hi = programInfo(progHi);
  return tryRecvGlobalRange(lo.firstGlobalRank,
                            hi.firstGlobalRank + hi.nprocs - 1, tag);
}

bool Comm::probeAnyOf(int prog, int tag) {
  const ProgramInfo& info = programInfo(prog);
  return world_->mail.probeRange(globalRank_, info.firstGlobalRank,
                                 info.firstGlobalRank + info.nprocs - 1, tag);
}

void Comm::sendBytesTo(int prog, int rankInProg, int tag,
                       std::span<const std::byte> data) {
  sendGlobal(globalRankOf(prog, rankInProg), tag, data);
}

void Comm::sendBytesTo(int prog, int rankInProg, int tag,
                       std::vector<std::byte>&& data) {
  sendGlobal(globalRankOf(prog, rankInProg), tag, std::move(data));
}

Message Comm::recvMsgFrom(int prog, int rankInProg, int tag) {
  return recvGlobal(globalRankOf(prog, rankInProg), tag);
}

int Comm::leaderIndexOfRank(int leaderRank) const {
  const auto it =
      std::lower_bound(nodeLeaders_.begin(), nodeLeaders_.end(), leaderRank);
  MC_REQUIRE(it != nodeLeaders_.end() && *it == leaderRank,
             "rank %d is not a node leader", leaderRank);
  return static_cast<int>(it - nodeLeaders_.begin());
}

void Comm::hierarchicalBarrier() {
  // Two-level clock max: members report to their node leader over the cheap
  // intraNode link, node maxima meet at rank 0 (always a leader), and the
  // global max fans back out leaders-then-members.  All receives are in
  // fixed rank order so virtual clocks stay deterministic.
  const int tag = collectiveTag();
  if (!isNodeLeader()) {
    sendValue(nodeLeader(), tag, clock_);
    clock_ = std::max(clock_, recvValue<double>(nodeLeader(), tag));
    return;
  }
  double maxClock = clock_;
  for (int r : nodePeers_) {
    if (r == localRank_) continue;
    maxClock = std::max(maxClock, recvValue<double>(r, tag));
  }
  if (localRank_ != 0) {
    sendValue(0, tag, maxClock);
    clock_ = std::max(clock_, recvValue<double>(0, tag));
  } else {
    for (size_t l = 1; l < nodeLeaders_.size(); ++l) {
      maxClock = std::max(maxClock, recvValue<double>(nodeLeaders_[l], tag));
    }
    clock_ = std::max(clock_, maxClock);
    for (size_t l = 1; l < nodeLeaders_.size(); ++l) {
      sendValue(nodeLeaders_[l], tag, clock_);
    }
  }
  for (int r : nodePeers_) {
    if (r == localRank_) continue;
    sendValue(r, tag, clock_);
  }
}

void Comm::barrier() {
  if (hierarchicalOn()) {
    hierarchicalBarrier();
    return;
  }
  const int tag = collectiveTag();
  const int root = 0;
  if (localRank_ == root) {
    double maxClock = clock_;
    // Receive in rank order (not kAnySource): the clock arithmetic of
    // interleaved max/overhead updates must not depend on wall-clock
    // arrival order, or virtual times would vary run to run.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recvMsg(r, tag);
      double peer = 0.0;
      MC_CHECK(m.payload.size() == sizeof(double));
      std::memcpy(&peer, m.payload.data(), sizeof(double));
      maxClock = std::max(maxClock, peer);
    }
    clock_ = std::max(clock_, maxClock);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      sendValue(r, tag, clock_);
    }
  } else {
    sendValue(root, tag, clock_);
    const double rootClock = recvValue<double>(root, tag);
    clock_ = std::max(clock_, rootClock);
  }
}

void Comm::hierarchicalBcast(std::vector<std::byte>& buf, int root) {
  // Hand the buffer to the root's node leader, binomial-broadcast across
  // the leaders (same tree shape as the flat path, over the leader list),
  // then fan out within each node.  The payload is forwarded verbatim, so
  // every rank ends with exactly the root's bytes.
  const int tag = collectiveTag();
  const int rootLeader = leaderOfRank(root);
  if (localRank_ == root && root != rootLeader) {
    sendBytes(rootLeader, tag, buf);
  }
  if (localRank_ == rootLeader && root != rootLeader) {
    Message m = recvMsg(root, tag);
    buf = std::move(m.payload);
  }
  if (isNodeLeader()) {
    const int nl = static_cast<int>(nodeLeaders_.size());
    const int rootIdx = leaderIndexOfRank(rootLeader);
    const int rel = (leaderIndexOfRank(localRank_) - rootIdx + nl) % nl;
    int mask = 1;
    while (mask < nl) {
      if (rel & mask) {
        const int parentIdx = (rel - mask + rootIdx) % nl;
        Message m = recvMsg(nodeLeaders_[static_cast<size_t>(parentIdx)], tag);
        buf = std::move(m.payload);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (rel + mask < nl) {
        const int childIdx = (rel + mask + rootIdx) % nl;
        sendBytes(nodeLeaders_[static_cast<size_t>(childIdx)], tag, buf);
      }
      mask >>= 1;
    }
    for (int r : nodePeers_) {
      if (r == localRank_ || r == root) continue;
      sendBytes(r, tag, buf);
    }
  } else if (localRank_ != root) {
    Message m = recvMsg(nodeLeader(), tag);
    buf = std::move(m.payload);
  }
}

void Comm::bcastBytes(std::vector<std::byte>& buf, int root) {
  if (hierarchicalOn()) {
    hierarchicalBcast(buf, root);
    return;
  }
  // Binomial tree (the classic MPI algorithm): O(log P) latency chains
  // instead of a flat root fan-out, and the root's per-message overheads
  // spread over the tree.
  const int tag = collectiveTag();
  const int np = size();
  const int relative = (localRank_ - root + np) % np;
  int mask = 1;
  while (mask < np) {
    if (relative & mask) {
      const int parent = (relative - mask + root) % np;
      Message m = recvMsg(parent, tag);
      buf = std::move(m.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < np) {
      const int child = (relative + mask + root) % np;
      sendBytes(child, tag, buf);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gatherBytes(
    std::span<const std::byte> mine, int root) {
  const int tag = collectiveTag();
  std::vector<std::vector<std::byte>> out;
  if (localRank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recvMsg(r, tag);
      out[static_cast<size_t>(r)] = std::move(m.payload);
    }
  } else {
    sendBytes(root, tag, mine);
  }
  return out;
}

std::vector<std::byte> Comm::allgatherFlatHierarchical(
    std::span<const std::byte> mine) {
  // Members hand their row to the node leader; each leader ships one framed
  // batch ([i32 rank][u64 size][bytes] per member) to rank 0, which splices
  // the rows back into rank order — so the flat buffer is byte-identical to
  // the flat path's — and the hierarchical bcast fans it out.
  const int tag = collectiveTag();
  std::vector<std::byte> flat;
  if (!isNodeLeader()) {
    sendBytes(nodeLeader(), tag, mine);
  } else {
    std::vector<std::byte> batch;
    const auto appendEntry = [&](int rank, std::span<const std::byte> row) {
      const std::int32_t r32 = rank;
      const std::uint64_t n = row.size();
      const auto* pr = reinterpret_cast<const std::byte*>(&r32);
      const auto* pn = reinterpret_cast<const std::byte*>(&n);
      batch.insert(batch.end(), pr, pr + sizeof(r32));
      batch.insert(batch.end(), pn, pn + sizeof(n));
      batch.insert(batch.end(), row.begin(), row.end());
    };
    appendEntry(localRank_, mine);
    for (int r : nodePeers_) {
      if (r == localRank_) continue;
      Message m = recvMsg(r, tag);
      appendEntry(r, m.payload);
      releasePayload(std::move(m.payload));
    }
    if (localRank_ != 0) {
      sendBytes(0, tag, std::move(batch));
    } else {
      std::vector<std::vector<std::byte>> rows(static_cast<size_t>(size()));
      std::vector<bool> have(static_cast<size_t>(size()), false);
      const auto splitBatch = [&](std::span<const std::byte> b) {
        size_t pos = 0;
        while (pos < b.size()) {
          std::int32_t rank = 0;
          std::uint64_t n = 0;
          MC_CHECK(pos + sizeof(rank) + sizeof(n) <= b.size());
          std::memcpy(&rank, b.data() + pos, sizeof(rank));
          pos += sizeof(rank);
          std::memcpy(&n, b.data() + pos, sizeof(n));
          pos += sizeof(n);
          MC_CHECK(rank >= 0 && rank < size());
          MC_CHECK(pos + n <= b.size());
          MC_CHECK(!have[static_cast<size_t>(rank)]);
          have[static_cast<size_t>(rank)] = true;
          rows[static_cast<size_t>(rank)].assign(b.data() + pos,
                                                 b.data() + pos + n);
          pos += static_cast<size_t>(n);
        }
        MC_CHECK(pos == b.size());
      };
      splitBatch(batch);
      for (size_t l = 1; l < nodeLeaders_.size(); ++l) {
        Message m = recvMsg(nodeLeaders_[l], tag);
        splitBatch(m.payload);
        releasePayload(std::move(m.payload));
      }
      for (int r = 0; r < size(); ++r) {
        MC_CHECK(have[static_cast<size_t>(r)]);
        const std::uint64_t n = rows[static_cast<size_t>(r)].size();
        const auto* pn = reinterpret_cast<const std::byte*>(&n);
        flat.insert(flat.end(), pn, pn + sizeof(n));
        flat.insert(flat.end(), rows[static_cast<size_t>(r)].begin(),
                    rows[static_cast<size_t>(r)].end());
      }
    }
  }
  bcastBytes(flat, 0);
  return flat;
}

std::vector<std::byte> Comm::allgatherFlat(std::span<const std::byte> mine) {
  if (hierarchicalOn()) return allgatherFlatHierarchical(mine);
  // Single flatten: the root writes each arriving payload straight into the
  // size-prefixed flat buffer — no intermediate row-of-rows and no second
  // memcpy per row (the old gather + flatten round trip copied every row
  // into `rows` and again into `flat` at root).  Rank order is preserved so
  // the clock arithmetic stays deterministic.
  const int root = 0;
  const int tag = collectiveTag();
  std::vector<std::byte> flat;
  if (localRank_ == root) {
    const auto appendRow = [&](std::span<const std::byte> row) {
      std::uint64_t n = row.size();
      const auto* p = reinterpret_cast<const std::byte*>(&n);
      flat.insert(flat.end(), p, p + sizeof(n));
      flat.insert(flat.end(), row.begin(), row.end());
    };
    for (int r = 0; r < size(); ++r) {
      if (r == root) {
        appendRow(mine);
        continue;
      }
      Message m = recvMsg(r, tag);
      appendRow(m.payload);
      releasePayload(std::move(m.payload));
    }
  } else {
    sendBytes(root, tag, mine);
  }
  bcastBytes(flat, root);
  return flat;
}

std::vector<std::vector<std::byte>> Comm::allgatherBytes(
    std::span<const std::byte> mine) {
  const std::vector<std::byte> flat = allgatherFlat(mine);
  std::vector<std::vector<std::byte>> out(static_cast<size_t>(size()));
  forEachFlatRow(flat, [&](int r, std::span<const std::byte> row) {
    out[static_cast<size_t>(r)].assign(row.begin(), row.end());
  });
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallImpl(
    const std::vector<std::vector<std::byte>>& sendTo,
    std::vector<std::byte>* selfRow) {
  MC_REQUIRE(static_cast<int>(sendTo.size()) == size(),
             "alltoall requires one buffer per rank (%d), got %zu", size(),
             sendTo.size());
  const int tag = collectiveTag();
  const int np = size();
  std::vector<std::vector<std::byte>> out(static_cast<size_t>(np));
  if (selfRow != nullptr) {
    out[static_cast<size_t>(localRank_)] = std::move(*selfRow);
  } else {
    out[static_cast<size_t>(localRank_)] = sendTo[static_cast<size_t>(
        localRank_)];
  }
  // Pairwise rotation: at step i rank me pairs off against me+i / me-i, so
  // under contention every node's NIC sees one message per step instead of
  // all P-1 senders hammering rank 0's node first, then rank 1's, ...
  for (int i = 1; i < np; ++i) {
    const int peer = (localRank_ + i) % np;
    sendBytes(peer, tag, sendTo[static_cast<size_t>(peer)]);
  }
  for (int i = 1; i < np; ++i) {
    const int peer = (localRank_ + i) % np;
    Message m = recvMsg(peer, tag);
    out[static_cast<size_t>(peer)] = std::move(m.payload);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallBytes(
    const std::vector<std::vector<std::byte>>& sendTo) {
  return alltoallImpl(sendTo, nullptr);
}

std::vector<std::vector<std::byte>> Comm::alltoallBytes(
    std::vector<std::vector<std::byte>>&& sendTo) {
  MC_REQUIRE(static_cast<int>(sendTo.size()) == size(),
             "alltoall requires one buffer per rank (%d), got %zu", size(),
             sendTo.size());
  return alltoallImpl(sendTo, &sendTo[static_cast<size_t>(localRank_)]);
}

}  // namespace mc::transport
