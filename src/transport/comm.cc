#include "transport/comm.h"

#include <algorithm>

namespace mc::transport {

Comm::Comm(WorldState* world, int globalRank)
    : world_(world), globalRank_(globalRank) {
  MC_REQUIRE(world != nullptr);
  MC_REQUIRE(globalRank >= 0 &&
             globalRank < static_cast<int>(world->programOf.size()));
  program_ = world_->programOf[static_cast<size_t>(globalRank)];
  localRank_ = world_->localRankOf[static_cast<size_t>(globalRank)];
}

int Comm::globalRankOf(int prog, int localRank) const {
  const ProgramInfo& info = programInfo(prog);
  MC_REQUIRE(localRank >= 0 && localRank < info.nprocs,
             "rank %d out of range for program %d (size %d)", localRank, prog,
             info.nprocs);
  return info.firstGlobalRank + localRank;
}

void Comm::sendGlobal(int dstGlobal, int tag,
                      std::span<const std::byte> data) {
  const NetParams& p = world_->net.paramsFor(globalRank_, dstGlobal);
  clock_ += p.sendOverhead +
            world_->net.senderOccupancy(globalRank_, dstGlobal, data.size());
  Message msg;
  msg.srcGlobal = globalRank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  msg.arrival = world_->net.arrival(clock_, globalRank_, dstGlobal, data.size());
  ++stats_.messagesSent;
  stats_.bytesSent += data.size();
  world_->mail.deliver(dstGlobal, std::move(msg));
}

Message Comm::recvGlobal(int srcGlobal, int tag) {
  Message m = world_->mail.receive(globalRank_, srcGlobal, tag,
                                   world_->recvTimeoutSeconds);
  const NetParams& p = world_->net.paramsFor(m.srcGlobal, globalRank_);
  clock_ = std::max(clock_, m.arrival) + p.recvOverhead +
           world_->net.receiverOccupancy(m.srcGlobal, globalRank_,
                                         m.payload.size());
  ++stats_.messagesReceived;
  stats_.bytesReceived += m.payload.size();
  return m;
}

void Comm::sendBytes(int dst, int tag, std::span<const std::byte> data) {
  sendGlobal(globalRankOf(program_, dst), tag, data);
}

Message Comm::recvMsg(int src, int tag) {
  const int srcGlobal =
      (src == kAnySource) ? kAnySource : globalRankOf(program_, src);
  // kAnySource within a program must not match cross-program traffic; the
  // libraries in this reproduction always use distinct tags for the two, so
  // plain global matching is sufficient and keeps the mailbox simple.
  return recvGlobal(srcGlobal, tag);
}

bool Comm::probe(int src, int tag) {
  const int srcGlobal =
      (src == kAnySource) ? kAnySource : globalRankOf(program_, src);
  return world_->mail.probe(globalRank_, srcGlobal, tag);
}

void Comm::sendBytesTo(int prog, int rankInProg, int tag,
                       std::span<const std::byte> data) {
  sendGlobal(globalRankOf(prog, rankInProg), tag, data);
}

Message Comm::recvMsgFrom(int prog, int rankInProg, int tag) {
  return recvGlobal(globalRankOf(prog, rankInProg), tag);
}

void Comm::barrier() {
  const int tag = collectiveTag();
  const int root = 0;
  if (localRank_ == root) {
    double maxClock = clock_;
    // Receive in rank order (not kAnySource): the clock arithmetic of
    // interleaved max/overhead updates must not depend on wall-clock
    // arrival order, or virtual times would vary run to run.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recvMsg(r, tag);
      double peer = 0.0;
      MC_CHECK(m.payload.size() == sizeof(double));
      std::memcpy(&peer, m.payload.data(), sizeof(double));
      maxClock = std::max(maxClock, peer);
    }
    clock_ = std::max(clock_, maxClock);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      sendValue(r, tag, clock_);
    }
  } else {
    sendValue(root, tag, clock_);
    const double rootClock = recvValue<double>(root, tag);
    clock_ = std::max(clock_, rootClock);
  }
}

void Comm::bcastBytes(std::vector<std::byte>& buf, int root) {
  // Binomial tree (the classic MPI algorithm): O(log P) latency chains
  // instead of a flat root fan-out, and the root's per-message overheads
  // spread over the tree.
  const int tag = collectiveTag();
  const int np = size();
  const int relative = (localRank_ - root + np) % np;
  int mask = 1;
  while (mask < np) {
    if (relative & mask) {
      const int parent = (relative - mask + root) % np;
      Message m = recvMsg(parent, tag);
      buf = std::move(m.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < np) {
      const int child = (relative + mask + root) % np;
      sendBytes(child, tag, buf);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::gatherBytes(
    std::span<const std::byte> mine, int root) {
  const int tag = collectiveTag();
  std::vector<std::vector<std::byte>> out;
  if (localRank_ == root) {
    out.resize(static_cast<size_t>(size()));
    out[static_cast<size_t>(root)].assign(mine.begin(), mine.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m = recvMsg(r, tag);
      out[static_cast<size_t>(r)] = std::move(m.payload);
    }
  } else {
    sendBytes(root, tag, mine);
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgatherBytes(
    std::span<const std::byte> mine) {
  const int root = 0;
  auto rows = gatherBytes(mine, root);
  // Broadcast the concatenation with a size prefix per rank.
  std::vector<std::byte> flat;
  if (localRank_ == root) {
    for (const auto& row : rows) {
      std::uint64_t n = row.size();
      const auto* p = reinterpret_cast<const std::byte*>(&n);
      flat.insert(flat.end(), p, p + sizeof(n));
      flat.insert(flat.end(), row.begin(), row.end());
    }
  }
  bcastBytes(flat, root);
  if (localRank_ == root) return rows;
  std::vector<std::vector<std::byte>> out(static_cast<size_t>(size()));
  size_t pos = 0;
  for (int r = 0; r < size(); ++r) {
    MC_CHECK(pos + sizeof(std::uint64_t) <= flat.size());
    std::uint64_t n = 0;
    std::memcpy(&n, flat.data() + pos, sizeof(n));
    pos += sizeof(n);
    MC_CHECK(pos + n <= flat.size());
    out[static_cast<size_t>(r)].assign(flat.begin() + static_cast<long>(pos),
                                       flat.begin() + static_cast<long>(pos + n));
    pos += n;
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallBytes(
    const std::vector<std::vector<std::byte>>& sendTo) {
  MC_REQUIRE(static_cast<int>(sendTo.size()) == size(),
             "alltoall requires one buffer per rank (%d), got %zu", size(),
             sendTo.size());
  const int tag = collectiveTag();
  std::vector<std::vector<std::byte>> out(static_cast<size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    if (r == localRank_) {
      out[static_cast<size_t>(r)] = sendTo[static_cast<size_t>(r)];
      continue;
    }
    sendBytes(r, tag, sendTo[static_cast<size_t>(r)]);
  }
  for (int r = 0; r < size(); ++r) {
    if (r == localRank_) continue;
    Message m = recvMsg(r, tag);
    out[static_cast<size_t>(r)] = std::move(m.payload);
  }
  return out;
}

}  // namespace mc::transport
