// Per-destination mailboxes with (source, tag) matching.
//
// Sends are buffered (the payload is copied into the Message), so a send
// never blocks — the rendezvous deadlocks of eager SPMD code cannot occur,
// matching the buffered/asynchronous semantics the paper's libraries rely
// on.  Receives block until a matching message is queued.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "transport/message.h"
#include "util/error.h"

namespace mc::transport {

/// One mailbox per destination global rank.  Thread safe.
class MailboxTable {
 public:
  explicit MailboxTable(int nprocs);

  /// Enqueues `msg` for destination `dst` and wakes waiting receivers.
  void deliver(int dst, Message msg);

  /// Blocks until a message matching (src, tag) is available at `dst`, then
  /// removes and returns it.  `src` / `tag` may be kAnySource / kAnyTag.
  /// Matching is FIFO in enqueue order, so messages between one
  /// (source, tag) pair never overtake each other — the MPI non-overtaking
  /// guarantee.
  ///
  /// Throws mc::Error if the table is aborted while waiting, or after
  /// `timeoutSeconds` of wall-clock inactivity (deadlock guard for tests).
  Message receive(int dst, int src, int tag, double timeoutSeconds);

  /// Range-source receive: matches any message whose source global rank
  /// lies in [srcLo, srcHi] (inclusive) with a matching tag.  This is how
  /// arrival-order schedule drains scope an any-source match to one
  /// program's rank range, so wildcard receives can never steal another
  /// program's same-tag traffic.
  Message receiveRange(int dst, int srcLo, int srcHi, int tag,
                       double timeoutSeconds);

  /// Non-blocking receiveRange: removes and returns the first queued message
  /// matching ([srcLo, srcHi], tag), or nullopt if none is queued yet.  This
  /// is the opportunistic drain behind sched::Executor's split-phase
  /// Pending::poll() — a caller computing between start() and finish() can
  /// consume messages that have already arrived without ever blocking.
  /// Throws mc::Error if the table has been aborted.
  std::optional<Message> tryReceiveRange(int dst, int srcLo, int srcHi,
                                         int tag);

  /// Returns true if a matching message is queued (non-blocking probe).
  /// Matches exactly like receive(): src may be kAnySource, tag kAnyTag.
  bool probe(int dst, int src, int tag);

  /// Range-source probe, matching exactly like receiveRange: true when a
  /// message whose source global rank lies in [srcLo, srcHi] (inclusive)
  /// with a matching tag is queued at `dst`.
  bool probeRange(int dst, int srcLo, int srcHi, int tag);

  /// Wakes all waiters with an error; used when a peer thread throws so the
  /// whole world fails fast instead of deadlocking.
  void abort(std::string reason);

 private:
  struct Box {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  bool matchesRange(const Message& m, int srcLo, int srcHi, int tag) const {
    return m.srcGlobal >= srcLo && m.srcGlobal <= srcHi &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::vector<std::unique_ptr<Box>> boxes_;
  std::mutex abortMutex_;
  bool aborted_ = false;
  std::string abortReason_;
};

}  // namespace mc::transport
