// Size-classed recycling pool for message payload buffers.
//
// The steady-state hot path of schedule execution moves one payload buffer
// per message per time-step.  Allocating those buffers fresh every step
// costs an allocator round trip per message; the pool instead recycles
// payload *capacity* across steps: a released buffer parks in the free list
// of the largest power-of-two class its capacity covers, and an acquire is
// served from the class that covers the requested size.  Buffers acquired
// here always carry class-rounded capacity, so a recycled buffer serves any
// later request of its class regardless of the exact byte count.
//
// One shared instance lives in the transport WorldState (all virtual
// processors of a world recycle through it — payloads cross threads inside
// Messages, so the pool must too); sched::Executor additionally keeps a
// tiny per-executor free list in front of it for deterministic reuse.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace mc::transport {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;       // served from a free list
    std::uint64_t allocations = 0;  // had to heap-allocate
    std::uint64_t releases = 0;
    std::uint64_t dropped = 0;    // released past the per-class bound
  };

  /// Returns a buffer with size() == nbytes and capacity rounded up to the
  /// size class.  Sets *fresh (when non-null) to whether the buffer was
  /// heap-allocated rather than recycled.
  std::vector<std::byte> acquire(std::size_t nbytes, bool* fresh = nullptr) {
    if (nbytes == 0) {
      if (fresh != nullptr) *fresh = false;
      return {};
    }
    const std::size_t cls = classFor(nbytes);
    std::vector<std::byte> buf;
    if (cls >= kNumClasses) {  // absurdly large: bypass the pool
      buf.resize(nbytes);
      if (fresh != nullptr) *fresh = true;
      return buf;
    }
    bool recycled = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.acquires;
      auto& list = free_[cls];
      if (!list.empty()) {
        buf = std::move(list.back());
        list.pop_back();
        recycled = true;
        ++stats_.hits;
      } else {
        ++stats_.allocations;
      }
    }
    if (!recycled) buf.reserve(std::size_t{1} << cls);
    buf.resize(nbytes);
    if (fresh != nullptr) *fresh = !recycled;
    return buf;
  }

  /// Returns a buffer's capacity to the pool (contents are discarded).
  /// Buffers beyond the per-class bound are simply freed.
  void release(std::vector<std::byte>&& buf) {
    if (buf.capacity() == 0) return;
    // Class the buffer by the largest class its capacity fully covers, so
    // an acquire from that class never needs to reallocate.
    const std::size_t cls = std::bit_width(buf.capacity()) - 1;
    if (cls >= kNumClasses) return;
    buf.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.releases;
    auto& list = free_[cls];
    if (list.size() >= kMaxPerClass) {
      ++stats_.dropped;
      return;  // buf frees on scope exit
    }
    list.push_back(std::move(buf));
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Smallest class exponent covering `nbytes` (min class 64 bytes, so tiny
  /// control messages share one list instead of fragmenting across 1/2/4…).
  static std::size_t classFor(std::size_t nbytes) {
    const std::size_t w = std::bit_width(nbytes - 1);
    return w < kMinClass ? kMinClass : w;
  }

 private:
  static constexpr std::size_t kMinClass = 6;   // 64 B
  static constexpr std::size_t kNumClasses = 48;
  static constexpr std::size_t kMaxPerClass = 64;

  mutable std::mutex mutex_;
  Stats stats_;
  std::vector<std::vector<std::byte>> free_[kNumClasses];
};

}  // namespace mc::transport
