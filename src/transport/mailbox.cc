#include "transport/mailbox.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace mc::transport {

MailboxTable::MailboxTable(int nprocs) {
  MC_REQUIRE(nprocs > 0);
  boxes_.reserve(static_cast<size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) boxes_.push_back(std::make_unique<Box>());
}

void MailboxTable::deliver(int dst, Message msg) {
  Box& box = *boxes_.at(static_cast<size_t>(dst));
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  // Wake only this box's waiter.  Each box belongs to exactly one virtual
  // processor and that processor is the only thread that ever blocks on it,
  // so one wakeup suffices; abort() still uses notify_all since it must
  // reach a waiter regardless of which predicate it is parked on.
  box.cv.notify_one();
}

Message MailboxTable::receive(int dst, int src, int tag,
                              double timeoutSeconds) {
  return src == kAnySource
             ? receiveRange(dst, 0, std::numeric_limits<int>::max(), tag,
                            timeoutSeconds)
             : receiveRange(dst, src, src, tag, timeoutSeconds);
}

Message MailboxTable::receiveRange(int dst, int srcLo, int srcHi, int tag,
                                   double timeoutSeconds) {
  Box& box = *boxes_.at(static_cast<size_t>(dst));
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeoutSeconds));
  for (;;) {
    // First match in enqueue order: messages between one (source, tag) pair
    // never overtake each other, the MPI non-overtaking guarantee the
    // libraries' executors rely on.  (A later message can still carry an
    // earlier virtual arrival — e.g. a small message "overtaking" a large
    // one on the wire — but consumption order stays FIFO and the receiver
    // clock simply maxes with whatever arrival it sees.)
    auto best = box.queue.end();
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matchesRange(*it, srcLo, srcHi, tag)) {
        best = it;
        break;
      }
    }
    if (best != box.queue.end()) {
      Message out = std::move(*best);
      box.queue.erase(best);
      return out;
    }
    {
      std::lock_guard<std::mutex> alock(abortMutex_);
      if (aborted_) {
        throw Error("transport aborted while rank " + std::to_string(dst) +
                    " waited for a message: " + abortReason_);
      }
    }
    if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw Error(strprintf(
          "transport deadlock guard: rank %d timed out waiting for a message "
          "(src=[%d,%d] tag=%d)",
          dst, srcLo, srcHi, tag));
    }
  }
}

std::optional<Message> MailboxTable::tryReceiveRange(int dst, int srcLo,
                                                     int srcHi, int tag) {
  Box& box = *boxes_.at(static_cast<size_t>(dst));
  std::lock_guard<std::mutex> lock(box.mutex);
  // Same first-match-in-enqueue-order scan as receiveRange, so a poll
  // consumes exactly the message a blocking receive would have.
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (matchesRange(*it, srcLo, srcHi, tag)) {
      Message out = std::move(*it);
      box.queue.erase(it);
      return out;
    }
  }
  {
    std::lock_guard<std::mutex> alock(abortMutex_);
    if (aborted_) {
      throw Error("transport aborted while rank " + std::to_string(dst) +
                  " polled for a message: " + abortReason_);
    }
  }
  return std::nullopt;
}

bool MailboxTable::probe(int dst, int src, int tag) {
  // Delegate to the range matcher exactly as receive() does, so a probe hit
  // guarantees the matching receive would not block.
  return src == kAnySource
             ? probeRange(dst, 0, std::numeric_limits<int>::max(), tag)
             : probeRange(dst, src, src, tag);
}

bool MailboxTable::probeRange(int dst, int srcLo, int srcHi, int tag) {
  Box& box = *boxes_.at(static_cast<size_t>(dst));
  std::lock_guard<std::mutex> lock(box.mutex);
  return std::any_of(box.queue.begin(), box.queue.end(), [&](const Message& m) {
    return matchesRange(m, srcLo, srcHi, tag);
  });
}

void MailboxTable::abort(std::string reason) {
  {
    std::lock_guard<std::mutex> lock(abortMutex_);
    if (aborted_) return;
    aborted_ = true;
    abortReason_ = std::move(reason);
  }
  for (auto& box : boxes_) {
    // Take the box mutex so a receiver cannot miss the wakeup between its
    // aborted-flag check and entering the wait.
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

}  // namespace mc::transport
