// Network cost model for the virtual-processor transport.
//
// The paper's experiments ran on a 16-node IBM SP2 (MPL) and an 8-node
// Digital Alpha farm connected by an ATM Gigaswitch (PVM / UDP).  Neither is
// available, so the transport charges message costs with a LogGP-style
// model:
//
//   arrival = send_time + latency + bytes / bandwidth
//
// with optional *link contention*: each node has one NIC, so a transfer
// occupies the sender's NIC for its transmit time and the receiver's NIC
// for its receive time, scaled by the number of processes sharing the node
// (the deterministic surrogate for ATM link sharing).  Contention is what
// produces the paper's observation (Section 5.4) that times rise again
// beyond one server process per node, and (Section 5.2) that a transfer's
// rate is limited by the program running on fewer processors.
//
// The model is deterministic: occupancy charges land on the per-processor
// virtual clocks (sender side at send, receiver side at receive), never on
// shared mutable state, so repeated runs give identical virtual times.
//
// Parameters are picked per message based on where the endpoints live:
// same processor, same node, same program (machine interconnect), or
// different programs (e.g. client/server over ATM).
#pragma once

#include <vector>

#include "util/error.h"

namespace mc::transport {

/// Cost parameters for one class of link.
struct NetParams {
  double latency = 40e-6;          ///< end-to-end latency per message (s)
  double bandwidth = 35e6;         ///< payload bandwidth (bytes/s)
  double sendOverhead = 30e-6;     ///< CPU time charged to sender per message
  double recvOverhead = 30e-6;     ///< CPU time charged to receiver per message
  /// Per-message NIC processing time under contention (packetization,
  /// interrupt handling — the ATM/UDP per-message cost the paper blames in
  /// §5.4).  Charged, scaled by node sharing, as part of NIC occupancy on
  /// both endpoints of an inter-node message; zero keeps the pre-existing
  /// pure-byte occupancy model.
  double nicPerMessage = 0.0;

  /// Pure transfer time for a payload of `bytes`.
  double transferTime(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

/// SP2-like defaults for intra-program messages.
NetParams sp2Params();
/// ATM/PVM-like defaults for inter-program (client/server) messages.
NetParams atmParams();
/// Same-node (shared memory) defaults.
NetParams intraNodeParams();

/// Placement and link-class configuration for a transport world.
struct NetConfig {
  NetParams intraNode = intraNodeParams();
  NetParams interNode = sp2Params();
  NetParams interProgram = sp2Params();
  /// Number of physical nodes per program; processor p of a program lives on
  /// node p % nodes (cyclic, matching "up to k processes per node").  One
  /// entry per program; missing entries default to one proc per node.
  std::vector<int> nodesPerProgram;
  /// When true, inter-node transfers occupy both endpoint NICs (see above).
  bool contention = false;
  /// When true, program-scoped collectives (barrier, bcast, allgather,
  /// allreduce) run as two-level trees: intra-node gather to the node
  /// leader over cheap intraNode links, an inter-leader exchange, and an
  /// intra-node fan-out.  Data results are bitwise identical to the flat
  /// algorithms (rank-ordered merges); only the modeled clocks change.
  bool hierarchicalCollectives = false;
};

/// Computes message costs.  Stateless per message; thread safe.
class NetworkModel {
 public:
  /// `nodeOf[g]` = globally unique node id of global rank g;
  /// `programOf[g]` = program id of global rank g.
  NetworkModel(NetConfig config, std::vector<int> nodeOf,
               std::vector<int> programOf);

  /// Parameters applying to a (src,dst) global-rank pair.
  const NetParams& paramsFor(int src, int dst) const;

  /// NIC occupancy charged to the *sender's* clock before the message
  /// departs.  Zero unless contention is on and the message crosses nodes.
  double senderOccupancy(int src, int dst, std::size_t bytes) const;

  /// NIC occupancy charged to the *receiver's* clock when the message is
  /// consumed.  Zero unless contention is on and the message crossed nodes.
  double receiverOccupancy(int src, int dst, std::size_t bytes) const;

  /// Virtual arrival time of a message that departed at `sendTime` (after
  /// sender occupancy).  Under contention the transmit time has already
  /// been charged to the sender, so only latency remains; otherwise the
  /// wire time rides on the arrival.  Self-messages arrive instantly.
  double arrival(double sendTime, int src, int dst, std::size_t bytes) const;

  int nodeOf(int globalRank) const {
    return nodeOf_[static_cast<size_t>(globalRank)];
  }
  /// Number of processes sharing `globalRank`'s node (its NIC share).
  int procsOnNodeOf(int globalRank) const {
    return procsOnNode_[static_cast<size_t>(
        nodeOf_[static_cast<size_t>(globalRank)])];
  }
  const NetConfig& config() const { return config_; }

 private:
  bool crossNode(int src, int dst) const {
    return src != dst &&
           nodeOf_[static_cast<size_t>(src)] != nodeOf_[static_cast<size_t>(dst)];
  }

  NetConfig config_;
  std::vector<int> nodeOf_;
  std::vector<int> programOf_;
  std::vector<int> procsOnNode_;  // per node: processes placed there
};

}  // namespace mc::transport
