#include "transport/world.h"

#include <exception>
#include <mutex>
#include <thread>

namespace mc::transport {

void World::run(std::vector<ProgramSpec> programs, WorldOptions options) {
  MC_REQUIRE(!programs.empty(), "world needs at least one program");
  std::vector<ProgramInfo> infos;
  std::vector<int> programOf;
  std::vector<int> localRankOf;
  std::vector<int> nodeOf;
  int nextNode = 0;
  for (size_t p = 0; p < programs.size(); ++p) {
    const ProgramSpec& spec = programs[p];
    MC_REQUIRE(spec.nprocs > 0, "program %zu has %d processors", p,
               spec.nprocs);
    MC_REQUIRE(static_cast<bool>(spec.main), "program %zu has no main", p);
    infos.push_back(ProgramInfo{spec.name, spec.nprocs,
                                static_cast<int>(programOf.size())});
    // Node placement: cyclic over this program's nodes; node ids are unique
    // across programs (programs run on disjoint sets of nodes, as in the
    // paper's experiments).
    int nodes = spec.nprocs;  // default: one processor per node
    if (p < options.net.nodesPerProgram.size()) {
      nodes = options.net.nodesPerProgram[p];
      MC_REQUIRE(nodes > 0);
    }
    for (int r = 0; r < spec.nprocs; ++r) {
      programOf.push_back(static_cast<int>(p));
      localRankOf.push_back(r);
      nodeOf.push_back(nextNode + r % nodes);
    }
    nextNode += nodes;
  }
  const int worldSize = static_cast<int>(programOf.size());
  NetworkModel net(options.net, nodeOf, programOf);
  WorldState state(std::move(infos), std::move(programOf),
                   std::move(localRankOf), worldSize, std::move(net),
                   options.recvTimeoutSeconds);

  std::mutex errMutex;
  std::exception_ptr firstError;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(worldSize));
  for (int g = 0; g < worldSize; ++g) {
    const int prog = state.programOf[static_cast<size_t>(g)];
    threads.emplace_back([&, g, prog] {
      try {
        Comm comm(&state, g);
        programs[static_cast<size_t>(prog)].main(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(errMutex);
          if (!firstError) firstError = std::current_exception();
        }
        state.mail.abort("a virtual processor threw an exception");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

void World::runSPMD(int nprocs, std::function<void(Comm&)> main,
                    WorldOptions options) {
  run({ProgramSpec{"spmd", nprocs, std::move(main)}}, std::move(options));
}

}  // namespace mc::transport
