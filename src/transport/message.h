// Message representation for the virtual-processor transport.
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace mc::transport {

/// Wildcards for receive matching (MPI_ANY_SOURCE / MPI_ANY_TAG analogues).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A buffered message in flight or queued at its destination.
struct Message {
  int srcGlobal = 0;                ///< global rank of the sender
  int tag = 0;                      ///< user or collective tag
  double arrival = 0.0;             ///< virtual arrival time at the receiver
  std::vector<std::byte> payload;   ///< owned copy of the data

  std::size_t size() const { return payload.size(); }
};

/// Typed view straight into a message payload — the zero-copy receive path:
/// unpack reads the mailbox buffer in place instead of round-tripping
/// through an intermediate std::vector<T>.  The view is valid while the
/// Message (or a buffer moved out of it) is alive.  Payloads come from
/// operator new, so alignment suffices for any trivially copyable T.
template <typename T>
std::span<const T> payloadView(const Message& m) {
  static_assert(std::is_trivially_copyable_v<T>);
  MC_REQUIRE(m.payload.size() % sizeof(T) == 0,
             "message size %zu not a multiple of element size %zu",
             m.payload.size(), sizeof(T));
  return {reinterpret_cast<const T*>(m.payload.data()),
          m.payload.size() / sizeof(T)};
}

}  // namespace mc::transport
