// Message representation for the virtual-processor transport.
#pragma once

#include <cstddef>
#include <vector>

namespace mc::transport {

/// Wildcards for receive matching (MPI_ANY_SOURCE / MPI_ANY_TAG analogues).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A buffered message in flight or queued at its destination.
struct Message {
  int srcGlobal = 0;                ///< global rank of the sender
  int tag = 0;                      ///< user or collective tag
  double arrival = 0.0;             ///< virtual arrival time at the receiver
  std::vector<std::byte> payload;   ///< owned copy of the data

  std::size_t size() const { return payload.size(); }
};

}  // namespace mc::transport
