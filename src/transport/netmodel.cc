#include "transport/netmodel.h"

#include <algorithm>

namespace mc::transport {

NetParams sp2Params() {
  // Roughly SP2 "high performance switch" class: tens of microseconds of
  // latency and of per-message software overhead (MPL), tens of MB/s of
  // bandwidth.  The overheads matter: they are what makes Meta-Chaos's
  // message aggregation pay off (see ablation_aggregation).
  return NetParams{40e-6, 35e6, 30e-6, 30e-6};
}

NetParams atmParams() {
  // OC-3 ATM through PVM/UDP: high per-message software latency and
  // overhead, ~15 MB/s.
  return NetParams{500e-6, 15e6, 100e-6, 100e-6};
}

NetParams intraNodeParams() {
  // Shared-memory copy on an SMP node.
  return NetParams{5e-6, 300e6, 5e-6, 5e-6};
}

NetworkModel::NetworkModel(NetConfig config, std::vector<int> nodeOf,
                           std::vector<int> programOf)
    : config_(std::move(config)),
      nodeOf_(std::move(nodeOf)),
      programOf_(std::move(programOf)) {
  MC_REQUIRE(nodeOf_.size() == programOf_.size());
  const int maxNode =
      nodeOf_.empty() ? 0 : *std::max_element(nodeOf_.begin(), nodeOf_.end());
  procsOnNode_.assign(static_cast<size_t>(maxNode) + 1, 0);
  for (int node : nodeOf_) ++procsOnNode_[static_cast<size_t>(node)];
}

const NetParams& NetworkModel::paramsFor(int src, int dst) const {
  const auto s = static_cast<size_t>(src);
  const auto d = static_cast<size_t>(dst);
  if (programOf_[s] != programOf_[d]) return config_.interProgram;
  if (nodeOf_[s] == nodeOf_[d]) return config_.intraNode;
  return config_.interNode;
}

double NetworkModel::senderOccupancy(int src, int dst,
                                     std::size_t bytes) const {
  if (!config_.contention || !crossNode(src, dst)) return 0.0;
  const NetParams& p = paramsFor(src, dst);
  return (p.nicPerMessage + static_cast<double>(bytes) / p.bandwidth) *
         procsOnNodeOf(src);
}

double NetworkModel::receiverOccupancy(int src, int dst,
                                       std::size_t bytes) const {
  if (!config_.contention || !crossNode(src, dst)) return 0.0;
  const NetParams& p = paramsFor(src, dst);
  return (p.nicPerMessage + static_cast<double>(bytes) / p.bandwidth) *
         procsOnNodeOf(dst);
}

double NetworkModel::arrival(double sendTime, int src, int dst,
                             std::size_t bytes) const {
  if (src == dst) return sendTime;  // self-message: local queue, no network
  const NetParams& p = paramsFor(src, dst);
  if (config_.contention && crossNode(src, dst)) {
    // Transmit time was charged to the sender's clock as NIC occupancy.
    return sendTime + p.latency;
  }
  return sendTime + p.transferTime(bytes);
}

}  // namespace mc::transport
