// World: launches one or more SPMD programs on virtual processors.
//
// Each virtual processor is an OS thread running the program's main function
// with its own Comm.  Programs model the paper's two deployment scenarios:
// a single data parallel program using several libraries (one program), and
// separately executing programs coupled through Meta-Chaos (two programs,
// e.g. the Preg/Pirreg pair of Section 5.2 or the client/server pair of
// Section 5.4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "transport/comm.h"
#include "transport/netmodel.h"

namespace mc::transport {

/// One SPMD program to launch.
struct ProgramSpec {
  std::string name;
  int nprocs = 1;
  std::function<void(Comm&)> main;
};

/// Options for a world run.
struct WorldOptions {
  NetConfig net;
  /// Wall-clock receive timeout; generous default so genuine deadlocks in
  /// tests fail instead of hanging forever.
  double recvTimeoutSeconds = 120.0;
};

class World {
 public:
  /// Runs all programs to completion.  If any virtual processor throws, the
  /// world aborts (blocked receivers are woken with an error) and the first
  /// exception is rethrown here.
  static void run(std::vector<ProgramSpec> programs, WorldOptions options = {});

  /// Convenience: a single SPMD program.
  static void runSPMD(int nprocs, std::function<void(Comm&)> main,
                      WorldOptions options = {});
};

}  // namespace mc::transport
