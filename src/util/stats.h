// Small statistics accumulators used by the benchmark harness and the
// observability layer's cross-rank aggregation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace mc {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
///
/// An *empty* accumulator is explicit: mean/min/max/stddev return NaN, so a
/// missing measurement can never masquerade as a real zero in a report (the
/// JSON emitter turns the NaN into null).  Trivially copyable on purpose —
/// obs::aggregate ships RunningStats through Comm::allreduceValue.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Combines another accumulator into this one (Chan et al.'s parallel
  /// variance formula): the result is equivalent — up to floating-point
  /// association — to having add()ed both sample streams into one
  /// accumulator.  Merging with an empty side is exact.
  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::size_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta *
                       (static_cast<double>(n_) * static_cast<double>(o.n_) /
                        static_cast<double>(n));
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ = n;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : nan(); }
  double min() const { return n_ > 0 ? min_ : nan(); }
  double max() const { return n_ > 0 ? max_ : nan(); }
  /// Sample variance (n-1 denominator); 0 for a single sample, NaN when
  /// empty.
  double variance() const {
    if (n_ == 0) return nan();
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  static double nan() { return std::numeric_limits<double>::quiet_NaN(); }

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace mc
