// Small statistics accumulators used by the benchmark harness and the
// observability layer's cross-rank aggregation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace mc {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
///
/// An *empty* accumulator is explicit: mean/min/max/stddev return NaN, so a
/// missing measurement can never masquerade as a real zero in a report (the
/// JSON emitter turns the NaN into null).  Trivially copyable on purpose —
/// obs::aggregate ships RunningStats through Comm::allreduceValue.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Combines another accumulator into this one (Chan et al.'s parallel
  /// variance formula): the result is equivalent — up to floating-point
  /// association — to having add()ed both sample streams into one
  /// accumulator.  Merging with an empty side is exact.
  void merge(const RunningStat& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::size_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta *
                       (static_cast<double>(n_) * static_cast<double>(o.n_) /
                        static_cast<double>(n));
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
    n_ = n;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : nan(); }
  double min() const { return n_ > 0 ? min_ : nan(); }
  double max() const { return n_ > 0 ? max_ : nan(); }
  /// Sample variance (n-1 denominator); 0 for a single sample, NaN when
  /// empty.
  double variance() const {
    if (n_ == 0) return nan();
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  static double nan() { return std::numeric_limits<double>::quiet_NaN(); }

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile accumulator: a RunningStat over the full stream plus a
/// deterministic reservoir sample for p50/p99.
///
/// Below `capacity` samples the reservoir holds the whole stream, so
/// quantile() is exact.  Past capacity it switches to Algorithm R with a
/// seeded splitmix64 generator — the same insertion order always produces
/// the same sample set, so bench output is reproducible run to run (no
/// std::random_device, no wall-clock seeding).  Like RunningStat, an empty
/// accumulator is explicit: quantile() returns NaN, which the JSON emitter
/// turns into null.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 4096,
                     std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : cap_(capacity > 0 ? capacity : 1), rng_(seed) {}

  void add(double x) {
    stat_.add(x);
    if (samples_.size() < cap_) {
      samples_.push_back(x);
      return;
    }
    // Algorithm R: keep x with probability cap/count, replacing a uniform
    // victim.  nextRandom() is splitmix64 — deterministic given the seed
    // and the number of add() calls so far.
    const std::uint64_t j = nextRandom() % static_cast<std::uint64_t>(
                                               stat_.count());
    if (j < samples_.size()) samples_[j] = x;
  }

  /// Folds another reservoir in: moments merge exactly (Chan), samples
  /// concatenate.  If the union exceeds 4x capacity it is compacted to
  /// `capacity` points by even-rank selection over the sorted union, which
  /// preserves quantiles and stays deterministic.
  void merge(const Reservoir& o) {
    stat_.merge(o.stat_);
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    if (samples_.size() > 4 * cap_) {
      std::sort(samples_.begin(), samples_.end());
      std::vector<double> kept;
      kept.reserve(cap_);
      const std::size_t n = samples_.size();
      for (std::size_t i = 0; i < cap_; ++i) {
        kept.push_back(samples_[std::min((i * n + n / 2) / cap_, n - 1)]);
      }
      samples_.swap(kept);
    }
  }

  /// Nearest-rank quantile of the sampled stream, q in [0, 1]; exact while
  /// the stream fits in the reservoir.  NaN when empty.
  double quantile(double q) const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::min(1.0, std::max(0.0, q));
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped * static_cast<double>(sorted.size())));
    if (rank > 0) --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }

  std::size_t count() const { return stat_.count(); }
  std::size_t sampleCount() const { return samples_.size(); }
  /// Full-stream moments (not just the sampled subset).
  const RunningStat& stat() const { return stat_; }

 private:
  std::uint64_t nextRandom() {
    // splitmix64 (public-domain constants); mirrors util/rng.h.
    std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::size_t cap_;
  std::uint64_t rng_;
  RunningStat stat_;
  std::vector<double> samples_;
};

}  // namespace mc
