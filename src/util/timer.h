// Clock sources.
//
// ThreadCpuTimer measures CPU time consumed by the *calling thread only*
// (CLOCK_THREAD_CPUTIME_ID).  This is the measurement backbone of the
// virtual-time model: on an oversubscribed host (the reproduction runs many
// virtual processors on few cores) per-thread CPU time is unaffected by
// scheduling, so compute costs attributed to each virtual processor stay
// meaningful.
#pragma once

#include <ctime>

namespace mc {

/// Seconds of CPU time consumed by the calling thread so far.
inline double threadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Seconds of wall-clock time (monotonic).
inline double wallSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Measures thread CPU time between construction and elapsed().
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(threadCpuSeconds()) {}
  void reset() { start_ = threadCpuSeconds(); }
  double elapsed() const { return threadCpuSeconds() - start_; }

 private:
  double start_;
};

}  // namespace mc
