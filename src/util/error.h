// Error handling for the Meta-Chaos reproduction.
//
// Library code throws mc::Error on contract violations and unrecoverable
// conditions.  The MC_REQUIRE / MC_CHECK macros attach source location and a
// printf-style message.  Per the C++ Core Guidelines (E.2, I.10) we signal
// errors with exceptions rather than status codes; all containers are RAII so
// stack unwinding is safe anywhere in the library.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

#include "util/format.h"

namespace mc {

/// Exception type thrown by all mc:: libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] inline void failRequire(const char* file, int line,
                                     const char* expr, const std::string& msg) {
  throw Error(strprintf("%s:%d: requirement failed: %s%s%s", file, line, expr,
                        msg.empty() ? "" : " — ", msg.c_str()));
}

inline std::string requireMessage() { return {}; }
template <typename... Args>
std::string requireMessage(const char* fmt, Args&&... args) {
  return strprintf(fmt, std::forward<Args>(args)...);
}
}  // namespace detail

}  // namespace mc

/// Precondition / invariant check that is always on (not assert()): these
/// guard API contracts that user code can violate.
#define MC_REQUIRE(expr, ...)                                         \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::mc::detail::failRequire(__FILE__, __LINE__, #expr,            \
                                ::mc::detail::requireMessage(__VA_ARGS__)); \
    }                                                                 \
  } while (false)

/// Internal consistency check; same behaviour, different intent in code.
#define MC_CHECK(expr, ...) MC_REQUIRE(expr, __VA_ARGS__)
