// Versioned, checksummed byte containers for anything that leaves process
// memory.
//
// The schedule-blob path (sched/serialize.h) was born as an in-memory wire
// format between programs of one World: raw host-endian PODs, fine because
// sender and receiver are threads of the same process.  The snapshot
// subsystem persists the same bytes to disk, where they may be read by a
// different build on a different architecture — and the replicated-data
// interoperability literature is blunt about what happens next: unversioned,
// untagged serialization silently corrupts across boundaries.  So every blob
// that can be persisted now travels inside a common framed container:
//
//   [ magic "MCBLOB01" | container version | endian tag | kind |
//     kind version | sizeof(layout::Index) | sizeof(int) |
//     payload byte count | 128-bit payload checksum ]  ++  payload
//
// unframe() rejects — with a specific, loud error — anything whose magic,
// endianness, type widths, declared length, or checksum do not match; a
// mismatched or truncated blob can never be silently misread as data.
//
// ByteReader is the hardened payload cursor shared by every reader: all
// counts are validated against the remaining bytes BEFORE any allocation is
// sized from them, so a corrupt length field throws instead of triggering a
// pathological multi-GB reserve.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "layout/index.h"
#include "util/error.h"
#include "util/hash.h"

namespace mc::blob {

/// Payload kinds, one per serialized object type.  Persisted values —
/// append only, never renumber.
enum Kind : std::uint32_t {
  kSchedule = 1,          // sched::Schedule (sched/serialize.h)
  kMcSchedule = 2,        // core::McSchedule (snapshot/snapshot.h)
  kTranslationTable = 3,  // chaos::TranslationTable
  kPartiArray = 4,        // parti::BlockDistArray<T>
  kHpfArray = 5,          // hpfrt::HpfArray<T>
  kTulipCollection = 6,   // tulip::Collection<T>
  kIrregArray = 7,        // chaos::IrregArray<T>
  kSnapshotBody = 8,      // one rank's snapshot sections
  kSnapshotManifest = 9,  // cross-rank agreement digests
};

inline constexpr std::array<char, 8> kMagic = {'M', 'C', 'B', 'L',
                                               'O', 'B', '0', '1'};
inline constexpr std::uint32_t kContainerVersion = 1;
/// Written as a native u32; a byte-swapped reader sees 0x04030201.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/// The fixed-size frame header.  Field order is the on-disk layout; all
/// members are naturally aligned so the struct is padding-free and can be
/// memcpy'd whole.
struct FrameHeader {
  std::array<char, 8> magic = kMagic;
  std::uint32_t containerVersion = kContainerVersion;
  std::uint32_t endianTag = kEndianTag;
  std::uint32_t kind = 0;
  std::uint32_t kindVersion = 0;
  std::uint32_t sizeofIndex = sizeof(layout::Index);
  std::uint32_t sizeofInt = sizeof(int);
  std::uint64_t payloadBytes = 0;
  HashStream::Digest checksum{0, 0};
};
static_assert(std::is_trivially_copyable_v<FrameHeader>);
static_assert(sizeof(FrameHeader) == 56, "frame header must be padding-free");

inline HashStream::Digest payloadChecksum(std::span<const std::byte> payload) {
  HashStream h;
  h.str("mc-blob-payload");
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

/// Wraps `payload` in a validated frame.
inline std::vector<std::byte> frame(Kind kind, std::uint32_t kindVersion,
                                    std::span<const std::byte> payload) {
  FrameHeader h;
  h.kind = kind;
  h.kindVersion = kindVersion;
  h.payloadBytes = payload.size();
  h.checksum = payloadChecksum(payload);
  std::vector<std::byte> out(sizeof(FrameHeader) + payload.size());
  std::memcpy(out.data(), &h, sizeof(h));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(h), payload.data(), payload.size());
  }
  return out;
}

/// Validates the frame starting at `data` and returns its payload view plus
/// the kind version.  `consumed`, when non-null, receives the framed size so
/// concatenated frames can be walked; otherwise trailing bytes after the
/// frame are rejected.  Every failure mode throws mc::Error with a message
/// naming what mismatched — nothing is ever silently misread.
struct FrameView {
  std::span<const std::byte> payload;
  std::uint32_t kindVersion = 0;
};
inline FrameView unframe(std::span<const std::byte> data, Kind kind,
                         std::size_t* consumed = nullptr) {
  MC_REQUIRE(data.size() >= sizeof(FrameHeader),
             "blob truncated: %zu bytes is smaller than the %zu-byte frame "
             "header",
             data.size(), sizeof(FrameHeader));
  FrameHeader h;
  std::memcpy(&h, data.data(), sizeof(h));
  MC_REQUIRE(h.magic == kMagic, "blob has no MCBLOB01 magic — not a framed "
                                "blob, or written by an incompatible layer");
  MC_REQUIRE(h.endianTag == kEndianTag,
             "blob endianness tag mismatch (0x%08x, expected 0x%08x) — "
             "written on an incompatible-endian host",
             h.endianTag, kEndianTag);
  MC_REQUIRE(h.containerVersion == kContainerVersion,
             "blob container version %u, this build reads %u",
             h.containerVersion, kContainerVersion);
  MC_REQUIRE(h.sizeofIndex == sizeof(layout::Index) &&
                 h.sizeofInt == sizeof(int),
             "blob type widths (Index %u, int %u) do not match this build "
             "(Index %zu, int %zu)",
             h.sizeofIndex, h.sizeofInt, sizeof(layout::Index), sizeof(int));
  MC_REQUIRE(h.kind == static_cast<std::uint32_t>(kind),
             "blob kind %u, expected %u", h.kind,
             static_cast<std::uint32_t>(kind));
  const std::size_t avail = data.size() - sizeof(FrameHeader);
  MC_REQUIRE(h.payloadBytes <= avail,
             "blob truncated: header declares %llu payload bytes, %zu remain",
             static_cast<unsigned long long>(h.payloadBytes), avail);
  if (consumed == nullptr) {
    MC_REQUIRE(h.payloadBytes == avail,
               "trailing bytes after blob payload (%zu past the declared "
               "end)",
               avail - static_cast<std::size_t>(h.payloadBytes));
  } else {
    *consumed = sizeof(FrameHeader) + static_cast<std::size_t>(h.payloadBytes);
  }
  const std::span<const std::byte> payload =
      data.subspan(sizeof(FrameHeader),
                   static_cast<std::size_t>(h.payloadBytes));
  MC_REQUIRE(payloadChecksum(payload) == h.checksum,
             "blob checksum mismatch — payload corrupted");
  FrameView v;
  v.payload = payload;
  v.kindVersion = h.kindVersion;
  return v;
}

// --- payload writers --------------------------------------------------------

inline void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t pos = out.size();
  out.resize(pos + sizeof(v));
  std::memcpy(out.data() + pos, &v, sizeof(v));
}

template <typename T>
void putPods(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  putU64(out, v.size());
  const std::size_t pos = out.size();
  out.resize(pos + v.size() * sizeof(T));
  if (!v.empty()) std::memcpy(out.data() + pos, v.data(), v.size() * sizeof(T));
}

/// Length-prefixed raw bytes (e.g. a nested frame).
inline void putBytes(std::vector<std::byte>& out,
                     std::span<const std::byte> bytes) {
  putU64(out, bytes.size());
  const std::size_t pos = out.size();
  out.resize(pos + bytes.size());
  if (!bytes.empty()) std::memcpy(out.data() + pos, bytes.data(), bytes.size());
}

/// Length-prefixed string.
inline void putStr(std::vector<std::byte>& out, std::string_view s) {
  putU64(out, s.size());
  const std::size_t pos = out.size();
  out.resize(pos + s.size());
  if (!s.empty()) std::memcpy(out.data() + pos, s.data(), s.size());
}

// --- hardened payload reader ------------------------------------------------

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint64_t u64() {
    MC_REQUIRE(remaining() >= sizeof(std::uint64_t), "truncated blob");
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  /// Reads an element count that precedes items of at least `perItemBytes`
  /// serialized bytes each, and validates it against the remaining payload
  /// BEFORE the caller sizes any allocation from it.  This is the guard
  /// that keeps a corrupt count from provoking a multi-GB reserve.
  std::uint64_t count(std::size_t perItemBytes) {
    const std::uint64_t n = u64();
    MC_REQUIRE(perItemBytes == 0 || n <= remaining() / perItemBytes,
               "truncated blob: count %llu exceeds the %zu remaining bytes",
               static_cast<unsigned long long>(n), remaining());
    return n;
  }

  template <typename T>
  std::vector<T> pods() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = count(sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    if (n > 0) {
      std::memcpy(v.data(), data_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(T));
      pos_ += static_cast<std::size_t>(n) * sizeof(T);
    }
    return v;
  }

  /// Length-prefixed raw bytes as a view into the payload (no copy).
  std::span<const std::byte> bytes() {
    const std::uint64_t n = count(1);
    const std::span<const std::byte> v =
        data_.subspan(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::string str() {
    const std::span<const std::byte> v = bytes();
    return std::string(reinterpret_cast<const char*>(v.data()), v.size());
  }

  bool atEnd() const { return pos_ == data_.size(); }

  void requireEnd(const char* what) const {
    MC_REQUIRE(atEnd(), "trailing bytes in %s", what);
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace mc::blob
