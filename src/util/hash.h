// Content hashing for cache keys.
//
// HashStream accumulates a 128-bit digest (two independent FNV-1a lanes) of
// everything fed into it.  The schedule caches key on digests of
// (distribution descriptor, regions, method), so a key collision would
// silently alias two different communication schedules; 128 bits keeps that
// probability negligible at any realistic cache population.  The hash is
// deterministic across runs and hosts — part of the reproduction contract,
// like Rng.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>

namespace mc {

class HashStream {
 public:
  using Digest = std::array<std::uint64_t, 2>;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * kPrime;
      b_ = (b_ ^ p[i]) * kPrime;
      // Decorrelate the lanes: lane b also mixes the running position.
      b_ ^= b_ >> 29;
    }
    len_ += n;
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  template <typename T>
  void podSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }

  void str(std::string_view s) {
    pod(s.size());
    bytes(s.data(), s.size());
  }

  Digest digest() const {
    // Fold the total length in so "" + "ab" != "a" + "b".
    Digest d{a_ ^ len_, b_ + 0x9e3779b97f4a7c15ULL * (len_ + 1)};
    d[0] = mix(d[0]);
    d[1] = mix(d[1] ^ d[0]);
    return d;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t a_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t b_ = 0x84222325cbf29ce4ULL;  // rotated basis for lane 2
  std::uint64_t len_ = 0;
};

}  // namespace mc
