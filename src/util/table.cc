#include "util/table.h"

#include <algorithm>

namespace mc {

void AsciiTable::header(std::vector<std::string> cells) {
  lines_.insert(lines_.begin(), Line{false, std::move(cells)});
  lines_.insert(lines_.begin() + 1, Line{true, {}});
  hasHeader_ = true;
}

void AsciiTable::row(std::vector<std::string> cells) {
  lines_.push_back(Line{false, std::move(cells)});
}

void AsciiTable::separator() { lines_.push_back(Line{true, {}}); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths;
  for (const Line& line : lines_) {
    if (line.isSeparator) continue;
    if (widths.size() < line.cells.size()) widths.resize(line.cells.size(), 0);
    for (std::size_t c = 0; c < line.cells.size(); ++c) {
      widths[c] = std::max(widths[c], line.cells[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;
  std::string out;
  for (const Line& line : lines_) {
    if (line.isSeparator) {
      out.append(total, '-');
      out.push_back('\n');
      continue;
    }
    for (std::size_t c = 0; c < line.cells.size(); ++c) {
      const std::string& cell = line.cells[c];
      out += cell;
      if (c + 1 < line.cells.size()) {
        out.append(widths[c] - cell.size() + 3, ' ');
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace mc
