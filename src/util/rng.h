// Deterministic random number generation for workload construction.
//
// All mesh / partition / region generators take an explicit seed so every
// test and benchmark is reproducible bit-for-bit across runs and hosts.
#pragma once

#include <cstdint>
#include <vector>

namespace mc {

/// splitmix64: tiny, fast, well-distributed 64-bit generator.  Used instead
/// of std::mt19937 where we want a guaranteed-stable sequence that is part of
/// the reproduction contract (libstdc++'s distributions are not portable).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of 0..n-1.
  std::vector<std::uint64_t> permutation(std::uint64_t n) {
    std::vector<std::uint64_t> p(n);
    for (std::uint64_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

 private:
  std::uint64_t state_;
};

}  // namespace mc
