// Minimal printf-style string formatting (GCC 12 lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace mc {

/// printf into a std::string.  Type-checked by the compiler via the format
/// attribute; safe for any output length.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    // Writing the terminating NUL through data() into out[n] is permitted
    // since C++11 (that byte must hold '\0' already).
    std::vsnprintf(out.data(), static_cast<size_t>(n) + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace mc
