// ASCII table printer used by the benchmark harness to emit paper-shaped
// tables (rows = methods/phases, columns = processor counts, etc).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mc {

/// Collects rows of cells and renders them with aligned columns.
class AsciiTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);
  /// Appends a data row.
  void row(std::vector<std::string> cells);
  /// Appends a horizontal separator line.
  void separator();
  /// Renders the table (trailing newline included).
  std::string render() const;

 private:
  struct Line {
    bool isSeparator = false;
    std::vector<std::string> cells;
  };
  std::vector<Line> lines_;
  bool hasHeader_ = false;
};

}  // namespace mc
